"""Database catalog: named base relations, views, and their statistics.

The catalog is deliberately small — Smoke is an analytical engine operating
on immutable in-memory relations — but it is the anchor that lineage
queries trace *to*: a backward query names a base relation registered here.

Relation epochs
---------------
Captured lineage stores *positions* (rids) into the base relations as they
were at capture time.  Replacing a table invalidates those positions even
when the new table has the same schema and cardinality, so the catalog
tracks a per-name **epoch** that advances on every replacement.  Lineage
handles record the epoch at capture and consumers (``Lb`` scans,
``backward_table``) compare it against the live epoch, turning silent
stale-rid answers into errors.  ``preserve_rids=True`` opts a replacement
out of the bump — the contract that rows were updated *in place* (same
positions, same identity), which is exactly what
:class:`~repro.lineage.refresh.AggregateRefresher` does.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from ..errors import CatalogError
from ..substrate.stats import ColumnStats, collect_column_stats
from .table import Table


class Catalog:
    """Name → table mapping with helpers for base-relation identity."""

    def __init__(self):
        self._tables: Dict[str, Table] = {}
        self._epochs: Dict[str, int] = {}
        self._column_stats: Dict[Tuple[str, int, str], ColumnStats] = {}

    def register(
        self,
        name: str,
        table: Table,
        replace: bool = False,
        preserve_rids: bool = False,
    ) -> None:
        if not name or not name.isidentifier():
            raise CatalogError(f"invalid table name {name!r}")
        if name in self._tables and not replace:
            raise CatalogError(f"table {name!r} already exists")
        replacing = name in self._tables and self._tables[name] is not table
        self._tables[name] = table
        if replacing:
            self._evict_column_stats(name)
        if replacing and not preserve_rids:
            self._epochs[name] = self._epochs.get(name, 0) + 1

    def drop(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError(f"cannot drop unknown table {name!r}")
        del self._tables[name]
        self._evict_column_stats(name)
        # A later re-registration under this name is a different relation;
        # advancing here makes drop+create indistinguishable from replace.
        self._epochs[name] = self._epochs.get(name, 0) + 1

    def _evict_column_stats(self, name: str) -> None:
        for key in [k for k in self._column_stats if k[0] == name]:
            del self._column_stats[key]

    def column_stats(self, name: str, column: str) -> ColumnStats:
        """Distinct-count / uniqueness statistics of one stored column,
        computed once per ``(relation, epoch, column)`` and memoized —
        the late-materializing chain executor consults this per join hop
        to pick build sides and detect pk-fk fast paths, so repeated
        interactive statements never re-scan the column."""
        table = self.get(name)
        key = (name, self.epoch(name), column)
        stats = self._column_stats.get(key)
        if stats is None:
            stats = collect_column_stats(table.column(column))
            self._column_stats[key] = stats
        return stats

    def epoch(self, name: str) -> int:
        """Replacement epoch of a relation name (0 until first replaced).

        Unknown names answer their *next* epoch so that lineage captured
        against a since-dropped table can still be compared.
        """
        return self._epochs.get(name, 0)

    def epochs_snapshot(self) -> Dict[str, int]:
        """Every recorded replacement epoch (what a durable checkpoint
        persists so stale-rid guards survive a restart)."""
        return dict(self._epochs)

    def restore_epochs(self, epochs: Dict[str, int]) -> None:
        """Recovery-only: re-install replacement epochs from a checkpoint.

        Epochs may only move forward — the restored value must be at
        least what this (fresh) catalog has already recorded — so a
        recovered lineage handle compares against the same epoch line it
        was captured on.  The first post-recovery ``create_table`` of a
        base relation does not bump (creation is not replacement), which
        is what lets a restarted process re-load its base tables and
        keep serving checkpointed lineage.
        """
        for name, epoch in epochs.items():
            epoch = int(epoch)
            if epoch < 0 or epoch < self._epochs.get(name, 0):
                raise CatalogError(
                    f"cannot restore epoch {epoch} for {name!r}: epochs "
                    f"only move forward (live: {self._epochs.get(name, 0)})"
                )
            self._epochs[name] = epoch

    def get(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(
                f"unknown table {name!r}; known: {sorted(self._tables)}"
            ) from None

    def get_versioned(self, name: str) -> Tuple[Table, int]:
        """The table *and* its replacement epoch, read together.

        This is the accessor executor and lineage code must use (lint
        rule RPR005): reading a table without its epoch invites lineage
        that silently outlives a replacement.  Unknown names raise the
        same canonical error as :meth:`get`.
        """
        return self.get(name), self.epoch(name)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[str]:
        return iter(self._tables)

    def names(self):
        return sorted(self._tables)

    def resolve(self, name: str, default: Optional[Table] = None) -> Optional[Table]:
        return self._tables.get(name, default)
