"""Database catalog: named base relations, views, and their statistics.

The catalog is deliberately small — Smoke is an analytical engine operating
on immutable in-memory relations — but it is the anchor that lineage
queries trace *to*: a backward query names a base relation registered here.

Relation epochs
---------------
Captured lineage stores *positions* (rids) into the base relations as they
were at capture time.  Replacing a table invalidates those positions even
when the new table has the same schema and cardinality, so the catalog
tracks a per-name **epoch** that advances on every replacement.  Lineage
handles record the epoch at capture and consumers (``Lb`` scans,
``backward_table``) compare it against the live epoch, turning silent
stale-rid answers into errors.  ``preserve_rids=True`` opts a replacement
out of the bump — the contract that rows were updated *in place* (same
positions, same identity), which is exactly what
:class:`~repro.lineage.refresh.AggregateRefresher` does.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, Optional, Tuple

from ..errors import CatalogError
from ..substrate.stats import ColumnStats, collect_column_stats
from .table import Table


class Catalog:
    """Name → table mapping with helpers for base-relation identity.

    Thread-safety: mutations (register / drop / epoch restore) and the
    column-stats memo take an internal lock, so a writer replacing a
    table while reader threads compute stats cannot corrupt either map.
    Plain reads (``get``, ``epoch``) are single dict lookups — atomic
    under the GIL — and stay lock-free; readers wanting a *consistent*
    multi-name view pin a snapshot via :meth:`snapshot_state` (the
    serving layer's :class:`~repro.serve.CatalogSnapshot` does).
    """

    def __init__(self):
        self._tables: Dict[str, Table] = {}
        self._epochs: Dict[str, int] = {}
        self._column_stats: Dict[Tuple[str, int, str], ColumnStats] = {}
        self._lock = threading.RLock()

    def register(
        self,
        name: str,
        table: Table,
        replace: bool = False,
        preserve_rids: bool = False,
    ) -> None:
        if not name or not name.isidentifier():
            raise CatalogError(f"invalid table name {name!r}")
        with self._lock:
            if name in self._tables and not replace:
                raise CatalogError(f"table {name!r} already exists")
            replacing = name in self._tables and self._tables[name] is not table
            if replacing and preserve_rids:
                # preserve_rids asserts rows were updated in place (same
                # positions, same identity) — a different cardinality or
                # shape breaks that contract while keeping captured
                # lineage "valid", so rids would point past the end or
                # at reshaped rows.  Refuse rather than serve garbage.
                old = self._tables[name]
                if table.num_rows != old.num_rows:
                    raise CatalogError(
                        f"preserve_rids replacement of {name!r} must keep "
                        f"the row count ({old.num_rows} rows, got "
                        f"{table.num_rows}); replace without preserve_rids "
                        "to invalidate captured lineage instead"
                    )
                if table.schema != old.schema:
                    raise CatalogError(
                        f"preserve_rids replacement of {name!r} must keep "
                        f"the schema ({old.schema!r}, got {table.schema!r}); "
                        "replace without preserve_rids to invalidate "
                        "captured lineage instead"
                    )
            self._tables[name] = table
            if replacing:
                self._evict_column_stats(name)
            if replacing and not preserve_rids:
                self._epochs[name] = self._epochs.get(name, 0) + 1

    def drop(self, name: str) -> None:
        with self._lock:
            if name not in self._tables:
                raise CatalogError(f"cannot drop unknown table {name!r}")
            del self._tables[name]
            self._evict_column_stats(name)
            # A later re-registration under this name is a different
            # relation; advancing here makes drop+create
            # indistinguishable from replace.
            self._epochs[name] = self._epochs.get(name, 0) + 1

    def _evict_column_stats(self, name: str) -> None:
        for key in [k for k in self._column_stats if k[0] == name]:
            del self._column_stats[key]

    def column_stats(self, name: str, column: str) -> ColumnStats:
        """Distinct-count / uniqueness statistics of one stored column,
        computed once per ``(relation, epoch, column)`` and memoized —
        the late-materializing chain executor consults this per join hop
        to pick build sides and detect pk-fk fast paths, so repeated
        interactive statements never re-scan the column."""
        table, epoch = self.get_versioned(name)
        return self.stats_for(name, table, epoch, column)

    def stats_for(
        self, name: str, table: Table, epoch: int, column: str
    ) -> ColumnStats:
        """Epoch-pinned variant of :meth:`column_stats` for snapshot
        views: the caller supplies the table and epoch it pinned, so a
        reader on an old snapshot memoizes under the old epoch while the
        live catalog has moved on.  The scan itself runs outside the
        lock; two racing readers may both compute, one install wins.
        """
        key = (name, epoch, column)
        with self._lock:
            stats = self._column_stats.get(key)
        if stats is None:
            stats = collect_column_stats(table.column(column))
            with self._lock:
                stats = self._column_stats.setdefault(key, stats)
        return stats

    def snapshot_state(self) -> Tuple[Dict[str, Table], Dict[str, int]]:
        """Consistent copy of ``(tables, epochs)`` for snapshot views.

        Taken under the lock so a concurrent replacement can never yield
        a new table paired with its pre-replacement epoch.  Tables are
        immutable, so the shallow dict copies pin a full point-in-time
        image.
        """
        with self._lock:
            return dict(self._tables), dict(self._epochs)

    def epoch(self, name: str) -> int:
        """Replacement epoch of a relation name (0 until first replaced).

        Unknown names answer their *next* epoch so that lineage captured
        against a since-dropped table can still be compared.
        """
        return self._epochs.get(name, 0)

    def epochs_snapshot(self) -> Dict[str, int]:
        """Every recorded replacement epoch (what a durable checkpoint
        persists so stale-rid guards survive a restart)."""
        with self._lock:
            return dict(self._epochs)

    def restore_epochs(self, epochs: Dict[str, int]) -> None:
        """Recovery-only: re-install replacement epochs from a checkpoint.

        Epochs may only move forward — the restored value must be at
        least what this (fresh) catalog has already recorded — so a
        recovered lineage handle compares against the same epoch line it
        was captured on.  The first post-recovery ``create_table`` of a
        base relation does not bump (creation is not replacement), which
        is what lets a restarted process re-load its base tables and
        keep serving checkpointed lineage.
        """
        with self._lock:
            for name, epoch in epochs.items():
                epoch = int(epoch)
                if epoch < 0 or epoch < self._epochs.get(name, 0):
                    raise CatalogError(
                        f"cannot restore epoch {epoch} for {name!r}: epochs "
                        f"only move forward (live: {self._epochs.get(name, 0)})"
                    )
                self._epochs[name] = epoch

    def get(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(
                f"unknown table {name!r}; known: {sorted(self._tables)}"
            ) from None

    def get_versioned(self, name: str) -> Tuple[Table, int]:
        """The table *and* its replacement epoch, read together.

        This is the accessor executor and lineage code must use (lint
        rule RPR005): reading a table without its epoch invites lineage
        that silently outlives a replacement.  Unknown names raise the
        same canonical error as :meth:`get`.
        """
        return self.get(name), self.epoch(name)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[str]:
        return iter(self._tables)

    def names(self):
        return sorted(self._tables)

    def resolve(self, name: str, default: Optional[Table] = None) -> Optional[Table]:
        return self._tables.get(name, default)
