"""Cardinality statistics used to pre-allocate lineage indexes.

Section 3 of the paper observes that rid-array resizing dominates capture
cost and that knowing cardinalities up front reduces group-by capture
overhead by up to 60% (Smoke-I-TC) while selectivity estimates help
selections (Smoke-I-EC, Appendix G.1 — where the paper also finds it is
better to *over*-estimate than to resize).

:class:`CardinalityHints` is the carrier for this knowledge; executors ask
it how large to pre-allocate each index.  :func:`collect_group_counts` and
:func:`estimate_selectivity` produce hints the way the paper suggests —
during normal query processing or from simple value-distribution
assumptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np


@dataclass
class CardinalityHints:
    """Optional pre-allocation knowledge for lineage capture.

    Attributes
    ----------
    group_counts:
        Exact or estimated per-group input cardinalities for group-by /
        join-key matches, keyed by operator label (e.g. ``"groupby"``,
        ``"join:0"``).  Arrays are indexed by group/ match slot.
    selectivity:
        Estimated fraction of input rows a selection passes, keyed by
        operator label.  Used to size backward rid arrays.
    overestimate:
        Multiplier applied to estimates; the paper recommends >= 1.0 since
        underestimates re-trigger the resizing they were meant to avoid.
    """

    group_counts: Dict[str, np.ndarray] = field(default_factory=dict)
    selectivity: Dict[str, float] = field(default_factory=dict)
    overestimate: float = 1.0

    def group_count_for(self, label: str) -> Optional[np.ndarray]:
        counts = self.group_counts.get(label)
        if counts is None:
            return None
        if self.overestimate != 1.0:
            counts = np.ceil(counts * self.overestimate).astype(np.int64)
        return counts

    def selectivity_for(self, label: str) -> Optional[float]:
        sel = self.selectivity.get(label)
        if sel is None:
            return None
        return min(1.0, sel * self.overestimate)


def collect_group_counts(keys: np.ndarray, num_groups: Optional[int] = None) -> np.ndarray:
    """Exact per-group counts for integer group ids in ``[0, num_groups)``.

    This is what a statistics pass "piggy-backed on query processing"
    (paper Section 3.1) produces; Defer uses the same trick internally.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if num_groups is None:
        num_groups = int(keys.max()) + 1 if keys.size else 0
    return np.bincount(keys, minlength=num_groups).astype(np.int64)


def estimate_selectivity(values: np.ndarray, threshold: float, lo: float, hi: float) -> float:
    """Estimate P(value < threshold) assuming Uniform(lo, hi).

    Mirrors the paper's Smoke-I-EC selection experiment, which estimates the
    selectivity of ``v < ?`` as ``?/100`` for uniform v in [0, 100].
    """
    if hi <= lo:
        raise ValueError("hi must exceed lo")
    return float(min(1.0, max(0.0, (threshold - lo) / (hi - lo))))


def hints_from_lineage(lineage, relation: str, label: str) -> CardinalityHints:
    """Derive pre-allocation hints from a previous execution's lineage.

    The paper avoids offline statistics passes by collecting cardinalities
    *during query processing*; a captured backward index already holds the
    exact per-group cardinalities of the run that produced it, so repeated
    executions of the same (or a similar) query can pre-allocate from it —
    the speculative re-execution setting of Section 7's future work.
    """
    index = lineage.backward_index(relation)
    return CardinalityHints(group_counts={label: index.counts().astype(np.int64)})
