"""Cardinality statistics used to pre-allocate lineage indexes.

Section 3 of the paper observes that rid-array resizing dominates capture
cost and that knowing cardinalities up front reduces group-by capture
overhead by up to 60% (Smoke-I-TC) while selectivity estimates help
selections (Smoke-I-EC, Appendix G.1 — where the paper also finds it is
better to *over*-estimate than to resize).

:class:`CardinalityHints` is the carrier for this knowledge; executors ask
it how large to pre-allocate each index.  :func:`collect_group_counts` and
:func:`estimate_selectivity` produce hints the way the paper suggests —
during normal query processing or from simple value-distribution
assumptions.

Join build sides
----------------
The same cardinality knowledge drives the late-materializing chain
executor's per-hop **build-side decision**
(:func:`choose_build_side`): a hash join should build on its smaller
input, and when one side's keys are known unique (a primary key — e.g.
the lineage side of a ``Lb(view, dim)`` scan over a dimension table) the
probe can take the pk-fk fast path, whose backward indexes are
pre-allocatable (paper Section 3.2.4; cost-aware binary-join ordering
under cardinality constraints is the lever of "Worst-case Optimal Binary
Join Algorithms under General ℓp Constraints").  Uniqueness comes from
:class:`ColumnStats` (:func:`collect_column_stats`), memoized per
relation epoch by :meth:`repro.storage.catalog.Catalog.column_stats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from ..errors import InvalidArgumentError


@dataclass
class CardinalityHints:
    """Optional pre-allocation knowledge for lineage capture.

    Attributes
    ----------
    group_counts:
        Exact or estimated per-group input cardinalities for group-by /
        join-key matches, keyed by operator label (e.g. ``"groupby"``,
        ``"join:0"``).  Arrays are indexed by group/ match slot.
    selectivity:
        Estimated fraction of input rows a selection passes, keyed by
        operator label.  Used to size backward rid arrays.
    overestimate:
        Multiplier applied to estimates; the paper recommends >= 1.0 since
        underestimates re-trigger the resizing they were meant to avoid.
    """

    group_counts: Dict[str, np.ndarray] = field(default_factory=dict)
    selectivity: Dict[str, float] = field(default_factory=dict)
    overestimate: float = 1.0

    def group_count_for(self, label: str) -> Optional[np.ndarray]:
        counts = self.group_counts.get(label)
        if counts is None:
            return None
        if self.overestimate != 1.0:
            counts = np.ceil(counts * self.overestimate).astype(np.int64)
        return counts

    def selectivity_for(self, label: str) -> Optional[float]:
        sel = self.selectivity.get(label)
        if sel is None:
            return None
        return min(1.0, sel * self.overestimate)


def collect_group_counts(keys: np.ndarray, num_groups: Optional[int] = None) -> np.ndarray:
    """Exact per-group counts for integer group ids in ``[0, num_groups)``.

    This is what a statistics pass "piggy-backed on query processing"
    (paper Section 3.1) produces; Defer uses the same trick internally.
    """
    keys = np.asarray(keys, dtype=np.int64)
    if num_groups is None:
        num_groups = int(keys.max()) + 1 if keys.size else 0
    return np.bincount(keys, minlength=num_groups).astype(np.int64)


def estimate_selectivity(values: np.ndarray, threshold: float, lo: float, hi: float) -> float:
    """Estimate P(value < threshold) assuming Uniform(lo, hi).

    Mirrors the paper's Smoke-I-EC selection experiment, which estimates the
    selectivity of ``v < ?`` as ``?/100`` for uniform v in [0, 100].
    """
    if hi <= lo:
        raise InvalidArgumentError("hi must exceed lo")
    return float(min(1.0, max(0.0, (threshold - lo) / (hi - lo))))


@dataclass(frozen=True)
class ColumnStats:
    """Value-distribution statistics of one stored column."""

    rows: int
    distinct: int

    @property
    def is_unique(self) -> bool:
        """True when every value occurs exactly once (a key column):
        any subset gather of the column is then also duplicate-free."""
        return self.distinct == self.rows


def collect_column_stats(values: np.ndarray) -> ColumnStats:
    """One-pass statistics for a column (piggy-backed like the paper's
    cardinality collection; cached per relation epoch by the catalog)."""
    values = np.asarray(values)
    if values.dtype == object:
        distinct = len(set(values.tolist()))
    else:
        distinct = int(np.unique(values).shape[0])
    return ColumnStats(rows=int(values.shape[0]), distinct=distinct)


#: Caller-side budget for *deriving* key uniqueness from column
#: statistics: computing :class:`ColumnStats` scans the whole base
#: column once per epoch, which is fine for lookup tables but an
#: unbounded latency spike if the cold hit lands inside an interactive
#: statement over a huge fact relation.  Above this row count callers
#: should report ``keys_unique=None`` (unknown) and let the cardinality
#: rule decide — only the pk-fk fast probe is forgone, never
#: correctness.
UNIQUENESS_PROBE_MAX_ROWS = 1 << 18


@dataclass(frozen=True)
class JoinSideStats:
    """What one hash-join input knows about itself before probing:
    its cardinality and — when derivable from base-table statistics —
    whether its join keys are unique (``None`` = unknown)."""

    rows: int
    keys_unique: Optional[bool] = None


@dataclass(frozen=True)
class BuildSideDecision:
    """Outcome of :func:`choose_build_side` for one join hop."""

    build_left: bool
    pkfk: bool  # probe with the pk-fk fast path (build keys unique)
    reason: str

    @property
    def swapped(self) -> bool:
        return not self.build_left


def choose_build_side(
    left: JoinSideStats, right: JoinSideStats, plan_pkfk: bool = False
) -> BuildSideDecision:
    """The per-hop build-side decision table.

    1. A plan-level ``pkfk`` flag asserts the *left* keys unique, so the
       build stays left (the fast probe requires building on the unique
       side).
    2. Exactly one side known unique → build there with the pk-fk fast
       path — this is how a unique *lineage* side (``Lb`` over a
       dimension table) wins the pk-fk probe the plan never asserted.
    3. Both unique → the smaller unique side (ties left).
    4. Neither known unique → the smaller side (ties left — the
       deterministic tie-break the unit tests pin).
    """
    if plan_pkfk:
        return BuildSideDecision(True, True, "plan-pkfk")
    unique_left = left.keys_unique is True
    unique_right = right.keys_unique is True
    if unique_left and unique_right:
        if right.rows < left.rows:
            return BuildSideDecision(False, True, "unique-both-right-smaller")
        return BuildSideDecision(True, True, "unique-both-left")
    if unique_left:
        return BuildSideDecision(True, True, "unique-left")
    if unique_right:
        return BuildSideDecision(False, True, "unique-right")
    if right.rows < left.rows:
        return BuildSideDecision(False, False, "smaller-right")
    if left.rows < right.rows:
        return BuildSideDecision(True, False, "smaller-left")
    return BuildSideDecision(True, False, "tie-left")


def hints_from_lineage(lineage, relation: str, label: str) -> CardinalityHints:
    """Derive pre-allocation hints from a previous execution's lineage.

    The paper avoids offline statistics passes by collecting cardinalities
    *during query processing*; a captured backward index already holds the
    exact per-group cardinalities of the run that produced it, so repeated
    executions of the same (or a similar) query can pre-allocate from it —
    the speculative re-execution setting of Section 7's future work.
    """
    index = lineage.backward_index(relation)
    return CardinalityHints(group_counts={label: index.counts().astype(np.int64)})
