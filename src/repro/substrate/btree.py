"""A classic in-memory B-tree with duplicate keys and cursor scans.

This is the index structure behind :mod:`repro.substrate.bdb`, our
BerkeleyDB stand-in for the Phys-Bdb baseline (paper Section 5, Table 1).
BerkeleyDB's default access method is a B-tree that permits duplicate keys;
lineage capture under Phys-Bdb performs one ``put(out_rid, in_rid)`` per
lineage edge and lineage queries iterate duplicates with a cursor, so both
operations are implemented here with the same asymptotics (log-time descent
per put, amortized constant-time cursor steps).
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Tuple

#: Maximum number of keys a node may hold before splitting (order 2t = 64).
MAX_KEYS = 63
_MIN_DEGREE = (MAX_KEYS + 1) // 2


class _Node:
    __slots__ = ("keys", "values", "children")

    def __init__(self, leaf: bool):
        self.keys: List = []
        self.values: List = []
        self.children: Optional[List["_Node"]] = None if leaf else []

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class BTree:
    """B-tree mapping comparable keys to values, duplicates allowed.

    Duplicate keys are stored as independent entries in insertion order,
    matching BerkeleyDB's ``DB_DUP`` behaviour that Phys-Bdb relies on: one
    entry per lineage edge.
    """

    def __init__(self):
        self._root = _Node(leaf=True)
        self._size = 0
        self._height = 1

    def __len__(self) -> int:
        return self._size

    @property
    def height(self) -> int:
        return self._height

    # -- insertion -------------------------------------------------------------

    def insert(self, key, value) -> None:
        root = self._root
        if len(root.keys) >= MAX_KEYS:
            new_root = _Node(leaf=False)
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
            self._height += 1
        self._insert_nonfull(self._root, key, value)
        self._size += 1

    def _split_child(self, parent: _Node, index: int) -> None:
        child = parent.children[index]
        mid = len(child.keys) // 2
        sibling = _Node(leaf=child.is_leaf)
        # Move upper half to the new sibling; median moves up to the parent.
        sibling.keys = child.keys[mid + 1 :]
        sibling.values = child.values[mid + 1 :]
        if not child.is_leaf:
            sibling.children = child.children[mid + 1 :]
            child.children = child.children[: mid + 1]
        parent.keys.insert(index, child.keys[mid])
        parent.values.insert(index, child.values[mid])
        parent.children.insert(index + 1, sibling)
        child.keys = child.keys[:mid]
        child.values = child.values[:mid]

    def _insert_nonfull(self, node: _Node, key, value) -> None:
        while not node.is_leaf:
            # Descend right of equal keys so duplicates keep insertion order.
            idx = bisect.bisect_right(node.keys, key)
            child = node.children[idx]
            if len(child.keys) >= MAX_KEYS:
                self._split_child(node, idx)
                if key >= node.keys[idx]:
                    idx += 1
                child = node.children[idx]
            node = child
        idx = bisect.bisect_right(node.keys, key)
        node.keys.insert(idx, key)
        node.values.insert(idx, value)

    # -- lookup ----------------------------------------------------------------

    def get_first(self, key):
        """Return the first value stored under ``key`` or ``None``."""
        for value in self.iter_duplicates(key):
            return value
        return None

    def iter_duplicates(self, key) -> Iterator:
        """Iterate all values stored under ``key`` in insertion order."""
        for k, v in self.scan_from(key):
            if k != key:
                break
            yield v

    def scan_from(self, key) -> Iterator[Tuple]:
        """Cursor positioned at the first entry with ``entry.key >= key``."""
        stack: List[Tuple[_Node, int]] = []
        node = self._root
        while True:
            idx = bisect.bisect_left(node.keys, key)
            stack.append((node, idx))
            if node.is_leaf:
                break
            node = node.children[idx]
        yield from self._walk(stack)

    def scan_all(self) -> Iterator[Tuple]:
        """Full in-order cursor scan of (key, value) pairs."""
        stack: List[Tuple[_Node, int]] = []
        node = self._root
        while True:
            stack.append((node, 0))
            if node.is_leaf:
                break
            node = node.children[0]
        yield from self._walk(stack)

    def _walk(self, stack: List[Tuple[_Node, int]]) -> Iterator[Tuple]:
        # In-order traversal resuming from an (ancestor-chain, index) stack.
        while stack:
            node, idx = stack.pop()
            if node.is_leaf:
                while idx < len(node.keys):
                    yield node.keys[idx], node.values[idx]
                    idx += 1
                continue
            if idx < len(node.keys):
                # Emit separator key idx after its left subtree; when we pop
                # back we continue from child idx+1.
                stack.append((node, idx + 1))
                yield node.keys[idx], node.values[idx]
                child = node.children[idx + 1]
                while True:
                    stack.append((child, 0))
                    if child.is_leaf:
                        break
                    child = child.children[0]

    # -- validation (used by property tests) -----------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if structural invariants are violated."""

        def recurse(node: _Node, depth: int, lo, hi) -> int:
            assert len(node.keys) == len(node.values)
            assert all(
                node.keys[i] <= node.keys[i + 1] for i in range(len(node.keys) - 1)
            ), "keys not sorted within node"
            for k in node.keys:
                assert lo is None or k >= lo
                assert hi is None or k <= hi
            if node.is_leaf:
                return depth
            assert len(node.children) == len(node.keys) + 1
            depths = set()
            bounds = [lo] + node.keys + [hi]
            for i, child in enumerate(node.children):
                assert len(child.keys) >= 1, "non-root node underflow"
                depths.add(recurse(child, depth + 1, bounds[i], bounds[i + 1]))
            assert len(depths) == 1, "leaves at unequal depth"
            return depths.pop()

        recurse(self._root, 1, None, None)
