"""A BerkeleyDB-like external key/value store (the Phys-Bdb substrate).

The paper's Phys-Bdb baseline stores each lineage edge in BerkeleyDB
(in-memory, B-tree access method) and shows that crossing into an external
subsystem per edge slows capture by up to 250x.  We cannot ship BerkeleyDB,
so this module reproduces the *costs that experiment measures*:

* one API call per stored edge (no batching),
* key/value serialization to bytes on every put/get (BDB stores byte
  strings; we use fixed-width big-endian encodings so keys sort correctly),
* a B-tree index (:mod:`repro.substrate.btree`),
* cursor-based duplicate iteration for reads, which the paper found faster
  than bulk fetches for this workload.

DESIGN.md Section 3 documents this substitution.
"""

from __future__ import annotations

import struct
from typing import Iterator, List

from .btree import BTree

_KEY = struct.Struct(">q")


class BerkeleyDBSim:
    """An "external" store: serialize-per-call KV API over a B-tree."""

    def __init__(self):
        self._tree = BTree()

    def __len__(self) -> int:
        return len(self._tree)

    def put(self, key: int, value: int) -> None:
        """Store one duplicate entry under ``key`` (one lineage edge)."""
        self._tree.insert(_KEY.pack(key), _KEY.pack(value))

    def get_bulk(self, key: int) -> List[int]:
        """Fetch all duplicates in one call (allocates the result list)."""
        packed = _KEY.pack(key)
        return [_KEY.unpack(v)[0] for v in self._tree.iter_duplicates(packed)]

    def cursor(self, key: int) -> Iterator[int]:
        """Iterate duplicates one call at a time (the paper's faster path)."""
        packed = _KEY.pack(key)
        for k, v in self._tree.scan_from(packed):
            if k != packed:
                break
            yield _KEY.unpack(v)[0]

    def keys(self) -> Iterator[int]:
        seen = None
        for k, _ in self._tree.scan_all():
            if k != seen:
                seen = k
                yield _KEY.unpack(k)[0]
