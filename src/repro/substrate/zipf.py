"""Zipfian sampling over a bounded domain.

The paper's microbenchmarks use tables ``zipf(id, z, v)`` where ``z`` is an
integer drawn from a zipfian distribution over ``g`` distinct values with
skew ``theta`` and ``v`` is uniform in ``[0, 100]``.  numpy's
``random.zipf`` samples an unbounded Zipf; the benchmarks need the classic
*bounded* zipfian used by YCSB/TPC generators, so we implement it directly:

    P(rank k) = (1/k^theta) / H(g, theta),   k in 1..g

``theta = 0`` degenerates to uniform; larger theta concentrates mass on the
first ranks (the paper uses theta up to 1.6).
"""

from __future__ import annotations

import numpy as np

from ..errors import InvalidArgumentError


def zipf_probabilities(num_values: int, theta: float) -> np.ndarray:
    """Probability vector of a bounded zipfian over ranks ``1..num_values``."""
    if num_values < 1:
        raise InvalidArgumentError("num_values must be >= 1")
    if theta < 0:
        raise InvalidArgumentError("theta must be >= 0")
    ranks = np.arange(1, num_values + 1, dtype=np.float64)
    weights = ranks ** (-float(theta))
    return weights / weights.sum()


def sample_zipf(
    num_samples: int,
    num_values: int,
    theta: float,
    rng: np.random.Generator,
) -> np.ndarray:
    """Sample ``num_samples`` ranks in ``[0, num_values)`` (0-based).

    Sampling uses inverse-CDF on the cumulative probabilities, which is both
    fast (one ``searchsorted`` over sorted uniforms) and deterministic given
    the generator state.
    """
    probs = zipf_probabilities(num_values, theta)
    cdf = np.cumsum(probs)
    cdf[-1] = 1.0  # guard against floating point shortfall
    u = rng.random(num_samples)
    return np.searchsorted(cdf, u, side="right").astype(np.int64)
