"""Non-relational substrates: sampling, B-tree KV store, statistics."""

from .bdb import BerkeleyDBSim
from .btree import BTree
from .stats import CardinalityHints, collect_group_counts, estimate_selectivity
from .zipf import sample_zipf, zipf_probabilities

__all__ = [
    "BTree",
    "BerkeleyDBSim",
    "CardinalityHints",
    "collect_group_counts",
    "estimate_selectivity",
    "sample_zipf",
    "zipf_probabilities",
]
