"""Data skipping via partitioned rid arrays (paper Section 4.2).

Interactive filters use *parameterized* predicates (``l_shipmode = :p1``):
the attribute is known at capture time, the value at interaction time.
Smoke pushes these into capture by partitioning every backward-index rid
array on the predicate attributes, so a lineage consuming query reads only
the partition matching the bound parameters instead of scanning the whole
bucket.

:class:`AttributePartitioner` dictionary-encodes the attribute
combinations of a base relation; :class:`PartitionedRidIndex` stores each
output bucket's rids grouped by partition code with per-(bucket, code)
offsets — the rid-array partitioning of the paper, in CSR form.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..errors import LineageError
from ..exec.vector.kernels import factorize
from ..lineage.indexes import LineageIndex
from ..storage.table import Table


class AttributePartitioner:
    """Dictionary encoding of one or more partition attributes."""

    def __init__(self, table: Table, attributes: Sequence[str]):
        self.attributes = tuple(attributes)
        arrays = [table.column(a) for a in self.attributes]
        codes, num_codes, reps = factorize(arrays)
        self.codes = codes
        self.num_codes = num_codes
        self._value_to_code: Dict[Tuple, int] = {}
        for code, rep in enumerate(reps):
            key = tuple(arr[rep] for arr in arrays)
            self._value_to_code[key] = code

    def code_of(self, values: Sequence) -> Optional[int]:
        """Partition code for a bound parameter combination, or ``None``
        if the combination never occurs (empty result)."""
        return self._value_to_code.get(tuple(values))

    def combinations(self):
        """All occurring value combinations (used by parameter sweeps)."""
        return list(self._value_to_code)


class BinnedPartitioner:
    """Equal-width discretization of one *continuous* attribute.

    The paper notes data skipping "is applicable to categorical attributes
    and continuous attributes that can be discretized", because user-facing
    output is ultimately discretized at pixel granularity.  Bins are
    ordered, so range predicates (sliders, zooms: ``attr < :p``) map to a
    *contiguous* run of partition codes — one slice of the partitioned rid
    array plus a residual filter on the boundary bin.
    """

    def __init__(self, table: Table, attribute: str, num_bins: int):
        if num_bins < 1:
            raise LineageError("num_bins must be >= 1")
        self.attributes = (attribute,)
        values = np.asarray(table.column(attribute), dtype=np.float64)
        self.num_codes = num_bins
        if values.size == 0:
            self.lo, self.hi = 0.0, 1.0
        else:
            self.lo = float(values.min())
            self.hi = float(values.max())
        width = (self.hi - self.lo) or 1.0
        codes = ((values - self.lo) / width * num_bins).astype(np.int64)
        self.codes = np.clip(codes, 0, num_bins - 1)

    def bin_of(self, value: float) -> int:
        """Bin index of a query constant (clamped to the domain)."""
        width = (self.hi - self.lo) or 1.0
        code = int((float(value) - self.lo) / width * self.num_codes)
        return max(0, min(self.num_codes - 1, code))

    def code_of(self, values: Sequence) -> Optional[int]:
        return self.bin_of(values[0])


class PartitionedRidIndex:
    """A backward rid index whose buckets are partitioned by attribute.

    Layout: ``values`` holds each output bucket's rids contiguously,
    ordered by partition code within the bucket; ``sub_offsets`` has
    ``num_keys * num_codes + 1`` entries delimiting each (bucket, code)
    cell.
    """

    def __init__(self, backward: LineageIndex, partitioner: AttributePartitioner):
        offsets, values = backward.as_csr()
        self.num_keys = len(offsets) - 1
        self.partitioner = partitioner
        num_codes = partitioner.num_codes
        counts = np.diff(offsets)
        bucket_of_edge = np.repeat(
            np.arange(self.num_keys, dtype=np.int64), counts
        )
        edge_codes = partitioner.codes[values] if values.size else values
        combined = bucket_of_edge * num_codes + edge_codes
        order = np.argsort(combined, kind="stable")
        self.values = values[order]
        cell_counts = np.bincount(combined, minlength=self.num_keys * num_codes)
        self.sub_offsets = np.empty(self.num_keys * num_codes + 1, dtype=np.int64)
        self.sub_offsets[0] = 0
        np.cumsum(cell_counts, out=self.sub_offsets[1:])

    def lookup_code(self, out_rid: int, code: int) -> np.ndarray:
        if not 0 <= out_rid < self.num_keys:
            raise LineageError(f"rid {out_rid} out of range [0, {self.num_keys})")
        num_codes = self.partitioner.num_codes
        if not 0 <= code < num_codes:
            raise LineageError(f"partition code {code} out of range")
        cell = out_rid * num_codes + code
        return self.values[self.sub_offsets[cell] : self.sub_offsets[cell + 1]]

    def lookup(self, out_rid: int, values: Sequence) -> np.ndarray:
        """Rids of ``out_rid``'s lineage matching the bound parameters —
        reads exactly one partition, skipping the rest of the bucket."""
        code = self.partitioner.code_of(values)
        if code is None:
            return np.empty(0, dtype=np.int64)
        return self.lookup_code(out_rid, code)

    def lookup_full(self, out_rid: int) -> np.ndarray:
        """The whole bucket (all partitions) — for non-filtered queries."""
        num_codes = self.partitioner.num_codes
        lo = self.sub_offsets[out_rid * num_codes]
        hi = self.sub_offsets[(out_rid + 1) * num_codes]
        return self.values[lo:hi]

    def lookup_code_range(self, out_rid: int, lo_code: int, hi_code: int) -> np.ndarray:
        """Rids whose partition code lies in ``[lo_code, hi_code]``.

        Codes of one bucket are stored contiguously in code order, so a
        range predicate over a binned continuous attribute reads exactly
        one slice — the slider/zoom case of Section 4.2.
        """
        num_codes = self.partitioner.num_codes
        if not 0 <= out_rid < self.num_keys:
            raise LineageError(f"rid {out_rid} out of range [0, {self.num_keys})")
        lo_code = max(0, lo_code)
        hi_code = min(num_codes - 1, hi_code)
        if lo_code > hi_code:
            return self.values[:0]
        lo = self.sub_offsets[out_rid * num_codes + lo_code]
        hi = self.sub_offsets[out_rid * num_codes + hi_code + 1]
        return self.values[lo:hi]

    def memory_bytes(self) -> int:
        return int(self.values.nbytes + self.sub_offsets.nbytes)
