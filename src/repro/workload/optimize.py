"""Workload-aware execution: pruning + push-downs around one base query.

``execute_with_workload`` runs a base query with capture pruned to the
declared workload, then applies each push-down while the capture's
structures are still warm:

* :class:`~repro.workload.spec.FilteredBackwardSpec` → backward indexes
  filtered by the static predicate (selection push-down),
* :class:`~repro.workload.spec.SkippingSpec` → backward indexes
  re-partitioned by the parameter attributes (data skipping),
* :class:`~repro.workload.spec.AggPushdownSpec` → materialized partial
  cubes (group-by push-down).

The returned :class:`OptimizedResult` answers the corresponding lineage
consuming queries through dedicated methods, and records where the time
went so benchmarks can report capture-vs-query trade-offs (Figures 10-12,
21-23).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

from ..api import ExecOptions
from ..errors import WorkloadError
from ..lineage.capture import CaptureMode
from ..plan.logical import LogicalPlan
from ..storage.table import Table
from ..substrate.stats import CardinalityHints
from .cube import LineageCube
from .pruning import prune_capture
from .pushdown import filter_backward_index, predicate_mask
from .skipping import AttributePartitioner, PartitionedRidIndex
from .spec import (
    AggPushdownSpec,
    FilteredBackwardSpec,
    SkippingSpec,
    Workload,
)


@dataclass
class OptimizedResult:
    """A base-query result plus its workload-aware capture artifacts."""

    result: object                      # QueryResult
    workload: Workload
    capture_seconds: float              # base query + all push-down work
    base_seconds: float
    skipping: Dict[Tuple[str, Tuple[str, ...]], PartitionedRidIndex] = field(
        default_factory=dict
    )
    filtered: Dict[str, object] = field(default_factory=dict)
    cubes: Dict[Tuple[str, Tuple[str, ...]], LineageCube] = field(default_factory=dict)

    @property
    def table(self) -> Table:
        return self.result.table

    @property
    def lineage(self):
        return self.result.lineage

    # -- consuming-query entry points ------------------------------------------

    def backward(self, out_rids, relation: str) -> np.ndarray:
        return self.result.backward(out_rids, relation)

    def skip_backward(
        self, out_rid: int, relation: str, attributes: Sequence[str], values: Sequence
    ) -> np.ndarray:
        """Backward lineage restricted to a parameter binding — reads one
        partition of the partitioned rid index."""
        key = (relation, tuple(attributes))
        if key not in self.skipping:
            raise WorkloadError(f"no skipping index for {key}; declared: "
                                f"{sorted(self.skipping)}")
        return self.skipping[key].lookup(out_rid, values)

    def filtered_backward(self, out_rids, relation: str) -> np.ndarray:
        """Backward lineage through the selection-pushed index."""
        if relation not in self.filtered:
            raise WorkloadError(f"no pushed filter for relation {relation!r}")
        return np.unique(self.filtered[relation].lookup_many(out_rids))

    def cube_table(
        self, out_rid: int, relation: str, keys: Sequence[str]
    ) -> Table:
        """The materialized drill-down for one output group (≈0ms)."""
        key = (relation, tuple(keys))
        if key not in self.cubes:
            raise WorkloadError(f"no pushed cube for {key}")
        return self.cubes[key].lookup(out_rid)


def execute_with_workload(
    database,
    plan: LogicalPlan,
    workload: Workload,
    mode: CaptureMode = CaptureMode.INJECT,
    hints: Optional[CardinalityHints] = None,
    params: Optional[dict] = None,
) -> OptimizedResult:
    """Run ``plan`` with capture tailored to ``workload``."""
    config = prune_capture(workload, mode=mode, hints=hints)
    start = time.perf_counter()
    result = database.execute(plan, params=params, options=ExecOptions(capture=config))
    base_seconds = time.perf_counter() - start

    optimized = OptimizedResult(
        result=result,
        workload=workload,
        capture_seconds=base_seconds,
        base_seconds=base_seconds,
    )
    if not config.enabled:
        return optimized

    t0 = time.perf_counter()
    for spec in workload.of_type(FilteredBackwardSpec):
        base = database.table(spec.relation)
        mask = predicate_mask(base, spec.predicate, params)
        backward = result.lineage.backward_index(spec.relation)
        optimized.filtered[spec.relation] = filter_backward_index(backward, mask)

    for spec in workload.of_type(SkippingSpec):
        base = database.table(spec.relation)
        partitioner = AttributePartitioner(base, spec.attributes)
        backward = result.lineage.backward_index(spec.relation)
        optimized.skipping[(spec.relation, spec.attributes)] = PartitionedRidIndex(
            backward, partitioner
        )

    for spec in workload.of_type(AggPushdownSpec):
        base = database.table(spec.relation)
        forward = result.lineage.forward_index(spec.relation)
        group_of_row = _forward_to_groups(forward, base.num_rows)
        optimized.cubes[(spec.relation, spec.keys)] = LineageCube(
            base,
            group_of_row,
            len(result.table),
            spec.keys,
            spec.aggs,
        )
    optimized.capture_seconds = base_seconds + (time.perf_counter() - t0)
    return optimized


def _forward_to_groups(forward, num_rows: int) -> np.ndarray:
    """Dense output-group id per base row (−1 when the row reaches no
    output) from the forward index."""
    from ..lineage.indexes import RidArray

    if isinstance(forward, RidArray):
        return forward.values
    out = np.full(num_rows, -1, dtype=np.int64)
    offsets, values = forward.as_csr()
    counts = np.diff(offsets)
    rows = np.repeat(np.arange(num_rows, dtype=np.int64), counts)
    out[rows] = values
    return out
