"""Instrumentation pruning (paper Section 4.1).

Smoke does not capture lineage for any relation the declared workload
never traces, nor for any direction it never queries.  Both prunings fall
out of the :class:`~repro.lineage.capture.CaptureConfig` the executor
already honours; this module derives that config from a workload.
"""

from __future__ import annotations

from typing import Optional

from ..lineage.capture import CaptureConfig, CaptureMode
from ..substrate.stats import CardinalityHints
from .spec import Workload


def prune_capture(
    workload: Workload,
    mode: CaptureMode = CaptureMode.INJECT,
    hints: Optional[CardinalityHints] = None,
) -> CaptureConfig:
    """Capture config with relation and direction pruning applied."""
    relations = workload.relations()
    return CaptureConfig(
        mode=mode if relations else CaptureMode.NONE,
        backward=workload.needs_backward(),
        forward=workload.needs_forward(),
        relations=relations or None,
        hints=hints,
    )
