"""Group-by push-down: partial data cubes from lineage capture (§4.2).

Cross-filtering recomputes aggregation queries over the backward lineage
of a selection.  When the drill-down grouping attributes are known up
front, Smoke materializes the aggregates per (output group × key
combination) while the base query's scan is already touching every row —
"piggy-backing" cube construction on the base query instead of separate
offline scans.  Consuming queries then read materialized rows (the ≈0ms
line of Figure 11).

Supported aggregates are the algebraic/distributive ones the paper names:
COUNT, SUM, AVG, MIN, MAX.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..errors import LineageError, WorkloadError
from ..exec.vector.kernels import GroupLayout, compute_aggregate, factorize
from ..plan.logical import AggCall
from ..storage.table import Table


class LineageCube:
    """Materialized drill-down aggregates keyed by output group.

    ``lookup(out_rid)`` returns the pre-aggregated drill-down table for
    one output group: columns = cube keys + aggregate aliases.
    """

    def __init__(
        self,
        base: Table,
        group_of_row: np.ndarray,
        num_groups: int,
        keys: Sequence[str],
        aggs: Sequence[AggCall],
    ):
        if group_of_row.shape[0] != base.num_rows:
            raise WorkloadError("group_of_row must assign every base row")
        for agg in aggs:
            if agg.func == "count_distinct":
                raise WorkloadError(
                    "cube push-down supports algebraic/distributive "
                    "aggregates (COUNT/SUM/AVG/MIN/MAX)"
                )
        self.keys = tuple(keys)
        self.aggs = tuple(aggs)
        self.num_groups = num_groups

        in_query = group_of_row >= 0
        rows = np.nonzero(in_query)[0].astype(np.int64)
        groups = group_of_row[rows]
        key_arrays = [base.column(k)[rows] for k in self.keys]
        if rows.size == 0:
            self._offsets = np.zeros(num_groups + 1, dtype=np.int64)
            cols = {k: base.column(k)[:0] for k in self.keys}
            for agg in self.aggs:
                cols[agg.alias] = np.empty(0, dtype=np.float64)
            self._table = Table(cols)
            return
        key_codes, num_key_codes, reps = factorize(key_arrays)
        combined = groups * num_key_codes + key_codes
        cell_ids, num_cells, cell_reps = factorize([combined])
        # Re-rank cells so they are sorted by (group, key code): the cube
        # is then a CSR over output groups.
        cell_value = combined[cell_reps]
        order = np.argsort(cell_value, kind="stable")
        rank = np.empty(num_cells, dtype=np.int64)
        rank[order] = np.arange(num_cells, dtype=np.int64)
        cell_ids = rank[cell_ids]
        cell_reps = cell_reps[order]
        cell_value = cell_value[order]

        # Gather only the columns the aggregates read — the cube
        # piggy-backs on the base query's scan, it does not re-scan the
        # whole (possibly wide) relation.
        needed: List[str] = []
        for agg in self.aggs:
            if agg.arg is not None:
                needed.extend(c for c in agg.arg.columns() if c not in needed)
        subset = Table({c: base.column(c)[rows] for c in needed}) if needed else base.take(rows[:0])
        if not needed:
            subset = Table({"__dummy": np.zeros(rows.size, dtype=np.int64)})
        layout = GroupLayout(cell_ids, num_cells)
        columns: Dict[str, np.ndarray] = {}
        for k, arr in zip(self.keys, key_arrays, strict=True):
            columns[k] = arr[cell_reps]
        for agg in self.aggs:
            columns[agg.alias] = compute_aggregate(agg, layout, subset)
        self._table = Table(columns)
        cell_group = cell_value // num_key_codes
        counts = np.bincount(cell_group, minlength=num_groups)
        self._offsets = np.empty(num_groups + 1, dtype=np.int64)
        self._offsets[0] = 0
        np.cumsum(counts, out=self._offsets[1:])

    def lookup(self, out_rid: int) -> Table:
        """The materialized consuming-query answer for one output group."""
        if not 0 <= out_rid < self.num_groups:
            raise LineageError(f"rid {out_rid} out of range [0, {self.num_groups})")
        lo, hi = int(self._offsets[out_rid]), int(self._offsets[out_rid + 1])
        return self._table.take(np.arange(lo, hi, dtype=np.int64))

    @property
    def num_cells(self) -> int:
        return self._table.num_rows

    def memory_bytes(self) -> int:
        total = int(self._offsets.nbytes)
        for name in self._table.schema.names:
            arr = self._table.column(name)
            total += arr.nbytes
        return total
