"""Selection push-down into lineage capture (paper Section 4.2).

When the workload's consuming query filters lineage with a *static*
predicate (``σ_shipdate='xmas'(Lb(...))``), Smoke evaluates the predicate
during capture and keeps only qualifying rids in the backward index.  The
index shrinks and consuming queries skip the filter entirely; the price is
evaluating the predicate per input row at capture time — cheap for
selective predicates, a net loss past a selectivity cross-over point
(Appendix G.2, Figure 23).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..expr.ast import Expr, evaluate
from ..lineage.indexes import LineageIndex, RidIndex
from ..storage.table import Table


def predicate_mask(table: Table, predicate: Expr, params: Optional[dict] = None) -> np.ndarray:
    """Evaluate the pushed predicate over the base relation once."""
    return np.asarray(evaluate(predicate, table, params), dtype=bool)


def filter_backward_index(backward: LineageIndex, mask: np.ndarray) -> RidIndex:
    """Drop all rids failing the pushed predicate from a backward index."""
    offsets, values = backward.as_csr()
    keep = mask[values] if values.size else np.zeros(0, dtype=bool)
    counts = np.diff(offsets)
    # Per-bucket surviving counts via segmented sums of the keep mask.
    cum = np.empty(keep.shape[0] + 1, dtype=np.int64)
    cum[0] = 0
    np.cumsum(keep.astype(np.int64), out=cum[1:])
    new_offsets = cum[offsets]
    return RidIndex(new_offsets, values[keep])
