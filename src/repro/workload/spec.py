"""Declaring future lineage-consuming workloads (paper Sections 2.1, 4).

Applications like interactive visualizations know their interactions — and
therefore their lineage consuming queries — up front.  A
:class:`Workload` is that declaration: a list of query specs naming which
relations will be traced, in which direction, with which (possibly
parameterized) filters, and which drill-down aggregations.  The optimizer
(:mod:`repro.workload.optimize`) uses it to prune instrumentation and to
push consuming-query logic into capture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from ..errors import WorkloadError
from ..expr.ast import Expr
from ..plan.logical import AggCall


@dataclass(frozen=True)
class BackwardSpec:
    """The workload will run plain backward queries to ``relation``."""

    relation: str


@dataclass(frozen=True)
class ForwardSpec:
    """The workload will run forward queries from ``relation``."""

    relation: str


@dataclass(frozen=True)
class FilteredBackwardSpec:
    """Backward queries post-filtered by a *static* predicate over the
    base relation — the selection push-down target (Section 4.2)."""

    relation: str
    predicate: Expr


@dataclass(frozen=True)
class SkippingSpec:
    """Backward queries filtered by *parameterized* predicates on
    ``attributes`` — the data-skipping target: rid arrays are partitioned
    by these attributes at capture time (Section 4.2)."""

    relation: str
    attributes: Tuple[str, ...]

    def __init__(self, relation: str, attributes: Sequence[str]):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "attributes", tuple(attributes))
        if not self.attributes:
            raise WorkloadError("SkippingSpec requires at least one attribute")


@dataclass(frozen=True)
class AggPushdownSpec:
    """Aggregation queries over backward lineage, grouped by extra
    ``keys`` of the base relation — the group-by push-down target: the
    aggregates are materialized per (output, key-combination) during
    capture, i.e. a partial data cube (Section 4.2)."""

    relation: str
    keys: Tuple[str, ...]
    aggs: Tuple[AggCall, ...]

    def __init__(self, relation: str, keys: Sequence[str], aggs: Sequence[AggCall]):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "keys", tuple(keys))
        object.__setattr__(self, "aggs", tuple(aggs))
        if not self.keys:
            raise WorkloadError("AggPushdownSpec requires at least one key")
        if not self.aggs:
            raise WorkloadError("AggPushdownSpec requires at least one aggregate")


QuerySpec = Union[
    BackwardSpec, ForwardSpec, FilteredBackwardSpec, SkippingSpec, AggPushdownSpec
]


@dataclass
class Workload:
    """The declared set of future lineage consuming queries."""

    specs: List[QuerySpec] = field(default_factory=list)

    def relations(self) -> set:
        return {spec.relation for spec in self.specs}

    def needs_backward(self, relation: Optional[str] = None) -> bool:
        kinds = (BackwardSpec, FilteredBackwardSpec, SkippingSpec, AggPushdownSpec)
        return any(
            isinstance(s, kinds) and (relation is None or s.relation == relation)
            for s in self.specs
        )

    def needs_forward(self, relation: Optional[str] = None) -> bool:
        # Agg push-down consumes the forward index internally (it needs
        # each base row's output group) even if the app never runs a
        # forward query itself.
        kinds = (ForwardSpec, AggPushdownSpec)
        return any(
            isinstance(s, kinds) and (relation is None or s.relation == relation)
            for s in self.specs
        )

    def of_type(self, kind):
        return [s for s in self.specs if isinstance(s, kind)]
