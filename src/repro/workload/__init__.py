"""Workload-aware optimizations: pruning, selection push-down, data
skipping, and group-by push-down (paper Section 4)."""

from .advisor import CostModel, QueryProfile, calibrate, recommend
from .cube import LineageCube
from .optimize import OptimizedResult, execute_with_workload
from .pruning import prune_capture
from .pushdown import filter_backward_index, predicate_mask
from .skipping import AttributePartitioner, BinnedPartitioner, PartitionedRidIndex
from .spec import (
    AggPushdownSpec,
    BackwardSpec,
    FilteredBackwardSpec,
    ForwardSpec,
    SkippingSpec,
    Workload,
)

__all__ = [
    "AggPushdownSpec",
    "CostModel",
    "QueryProfile",
    "calibrate",
    "recommend",
    "AttributePartitioner",
    "BackwardSpec",
    "BinnedPartitioner",
    "FilteredBackwardSpec",
    "ForwardSpec",
    "LineageCube",
    "OptimizedResult",
    "PartitionedRidIndex",
    "SkippingSpec",
    "Workload",
    "execute_with_workload",
    "filter_backward_index",
    "predicate_mask",
    "prune_capture",
]
