"""A first-cut cost model for instrumentation choices (paper §7, item 2).

The paper leaves "what cost models are needed to choose between capture
paradigms" as future work, while giving the qualitative rule: *Defer is
preferable when the client must see base-query results quickly (e.g.
speculation between interactions) or when cardinalities collected during
execution remove resizing; Inject minimizes total work.*

This module encodes that rule with a small calibrated model so callers
can ask for a recommendation instead of hard-coding a mode.  Costs are
expressed in abstract per-row units calibrated once per interpreter
session (:func:`calibrate`), so recommendations adapt to the machine.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..lineage.capture import CaptureMode


@dataclass(frozen=True)
class QueryProfile:
    """What the advisor needs to know about the upcoming base query."""

    input_rows: int
    expected_groups: int
    #: Seconds of user "think time" available before the first lineage
    #: query will arrive (0 = lineage needed immediately).
    think_time_seconds: float = 0.0
    #: Probability that any lineage query arrives at all.
    lineage_probability: float = 1.0


@dataclass
class CostModel:
    """Calibrated per-row costs (seconds)."""

    inline_capture_per_row: float
    deferred_finalize_per_row: float

    def inject_latency(self, profile: QueryProfile) -> float:
        """Extra base-query latency Inject adds."""
        return profile.input_rows * self.inline_capture_per_row

    def defer_latency(self, profile: QueryProfile) -> float:
        """Extra *visible* latency Defer adds: finalization not hidden by
        think time, discounted by the chance lineage is never queried."""
        finalize = profile.input_rows * self.deferred_finalize_per_row
        hidden = min(finalize, profile.think_time_seconds)
        return (finalize - hidden) * profile.lineage_probability


_DEFAULT = CostModel(
    inline_capture_per_row=4e-9,     # reuse path: ~free (share the sort)
    deferred_finalize_per_row=25e-9,  # counting sort on demand
)
_calibrated: Optional[CostModel] = None


def calibrate(rows: int = 200_000) -> CostModel:
    """Measure the two capture paths once on this machine."""
    global _calibrated
    from ..lineage.indexes import RidIndex

    rng = np.random.default_rng(0)
    ids = rng.integers(0, 1_000, rows)
    # Inline (Inject/reuse): the sort happens anyway; marginal cost is the
    # offsets/bincount work.
    start = time.perf_counter()
    counts = np.bincount(ids, minlength=1_000)
    offsets = np.concatenate(([0], np.cumsum(counts)))
    inline = (time.perf_counter() - start) / rows
    # Deferred finalize: the full counting sort on demand.
    start = time.perf_counter()
    RidIndex.from_group_ids(ids, 1_000)
    deferred = (time.perf_counter() - start) / rows
    _calibrated = CostModel(
        inline_capture_per_row=max(inline, 1e-10),
        deferred_finalize_per_row=max(deferred, 1e-10),
    )
    return _calibrated


def recommend(profile: QueryProfile, model: Optional[CostModel] = None) -> CaptureMode:
    """INJECT or DEFER, whichever minimizes expected visible latency.

    Ties break toward INJECT (lower total work, per the paper).
    """
    model = model or _calibrated or _DEFAULT
    inject = model.inject_latency(profile)
    defer = model.defer_latency(profile)
    return CaptureMode.DEFER if defer < inject else CaptureMode.INJECT
