"""Snapshot-isolated concurrent serving layer (paper Section 6.5's
"millions of users" half: many readers brushing while refreshes land).

A :class:`Database` is a single-caller object: its catalog, result
registry, and caches assume one thread.  This module puts a serving
front on it —

* :class:`Snapshot` — an immutable, consistently-pinned read view: the
  catalog's ``(tables, epochs)`` and the registry's ``(entries,
  epochs)`` copied together, plus per-snapshot executors and an answer
  memo.  Reads against a snapshot never see later writes.
* :class:`DatabaseServer` — N pooled reader threads executing statements
  against pinned snapshots, and **one** writer thread applying queued
  mutations in submission order.  After each applied operation the
  writer publishes a fresh snapshot; a drained batch of operations
  commits under one :meth:`~repro.lineage.wal.WriteAheadLog
  .group_commit` block, so a burst of registrations pays a single fsync.

The isolation argument rests on immutability all the way down: tables
are never mutated in place (refreshes install *new* ``Table`` objects),
``QueryResult`` entries are frozen at registration, and the snapshot
copies the name→object maps under the owners' locks.  A reader holding
snapshot ``v`` therefore computes on exactly the state published as
``v`` — a brush racing a refresh returns the pre- or post-epoch answer
bit-identically, never a mix.

Readers never block on writers: snapshot acquisition is a single
attribute read of the latest published :class:`Snapshot` (atomic under
the GIL), statement execution happens entirely against the pinned view,
and the shared :class:`~repro.lineage.cache.LineageResolutionCache` is
keyed by the *snapshot's* registry epochs (threaded through
``resolve_scan_source``), so old-epoch and new-epoch resolutions coexist
without poisoning each other.

What a reader may never observe: a half-applied write, a table paired
with another epoch's result entry, a rid set resolved against a
different snapshot's registry epoch, or an acknowledged write that the
WAL does not hold.  Within a group-commit batch, a *snapshot* may expose
an operation whose WAL record fsyncs at batch exit — the submitting
writer is only acknowledged (its future resolved) after the fsync, so
the durability contract is kept at the acknowledgement boundary.
"""

from __future__ import annotations

import itertools
import queue
import threading
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import nullcontext
from typing import Callable, Dict, Iterator, Mapping, Optional, Tuple

import numpy as np

from .errors import CatalogError, PlanError, ServingError, StaleBindingError
from .lineage.cache import LineageResolutionCache
from .plan.logical import LogicalPlan
from .plan.rewrite import RewriteIndex, precompute_rewrites
from .storage.table import Table


class CatalogSnapshot:
    """Immutable name→table view pinned at one serving version.

    Duck-types the read surface of :class:`~repro.storage.catalog
    .Catalog` (``get`` / ``get_versioned`` / ``epoch`` / ``column_stats``
    / containment / iteration) so binder and executors run against it
    unchanged.  Column statistics delegate to the live catalog's
    epoch-pinned memo — stats are keyed ``(name, epoch, column)``, so a
    snapshot's lookups are filed under *its* epoch even after the live
    catalog moves on.
    """

    def __init__(
        self,
        tables: Dict[str, Table],
        epochs: Dict[str, int],
        stats_source,
    ):
        self._tables = tables
        self._epochs = epochs
        self._stats_source = stats_source

    def get(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(
                f"unknown table {name!r}; known: {sorted(self._tables)}"
            ) from None

    def get_versioned(self, name: str) -> Tuple[Table, int]:
        return self.get(name), self.epoch(name)

    def epoch(self, name: str) -> int:
        return self._epochs.get(name, 0)

    def epochs_snapshot(self) -> Dict[str, int]:
        return dict(self._epochs)

    def column_stats(self, name: str, column: str):
        table, epoch = self.get_versioned(name)
        return self._stats_source.stats_for(name, table, epoch, column)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[str]:
        return iter(self._tables)

    def names(self):
        return sorted(self._tables)

    def resolve(self, name: str, default: Optional[Table] = None):
        return self._tables.get(name, default)


class RegistrySnapshot(Mapping):
    """Immutable name→result view pinned at one serving version.

    A plain mapping from the executors' point of view, plus the
    ``epoch(name)`` accessor the lineage rid-resolution cache keys by.
    No LRU touch on lookup (the live registry owns recency), and no
    evicted-stub refresh: re-executing a stub is a *write*, so snapshot
    readers treat evicted names as unknown.
    """

    def __init__(self, entries: Dict[str, object], epochs: Dict[str, int]):
        self._entries = entries
        self._epochs = epochs

    def __getitem__(self, name: str):
        return self._entries[name]

    def __contains__(self, name) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self._entries)

    def __len__(self) -> int:
        return len(self._entries)

    def epoch(self, name: str) -> int:
        return self._epochs.get(name, 0)


class Snapshot:
    """One immutable, consistently-pinned read view of a database.

    ``version`` is the serving version that published this view (the
    count of write operations applied when it was taken).  Executors are
    built lazily per snapshot — they are stateless across runs, holding
    only the catalog/registry references, so per-snapshot instances cost
    nothing and pin the right view.  ``sql`` is strictly read-only:
    registration (``options.name``) raises :class:`ServingError`.

    The per-snapshot **answer memo** caches whole ``QueryResult`` objects
    by ``(plan identity, params, options)``.  Results are immutable, so
    handing the same object to every reader asking the same question on
    the same snapshot is sound — and it is what lets brush throughput
    *scale* with readers even on one core: within one epoch window, N
    readers asking overlapping questions pay the resolution once.
    """

    def __init__(
        self,
        database,
        version: int,
        catalog: CatalogSnapshot,
        results: RegistrySnapshot,
        lineage_cache: Optional[LineageResolutionCache] = None,
        default_options=None,
    ):
        self._database = database
        self.version = version
        self.catalog = catalog
        self.results = results
        self.lineage_cache = (
            lineage_cache
            if lineage_cache is not None
            else LineageResolutionCache(results)
        )
        self._default_options = default_options
        self._lock = threading.Lock()
        self._executors: Dict[str, object] = {}
        self._answers: Dict[object, object] = {}

    @classmethod
    def capture(
        cls,
        database,
        version: int = 0,
        lineage_cache: Optional[LineageResolutionCache] = None,
        default_options=None,
    ) -> "Snapshot":
        """Pin the database's current state: both state copies are taken
        under the owners' locks, catalog first — the writer protocol
        (registry mutations follow their catalog mutations within one
        operation, and concurrent writes are serialized by the writer
        thread) keeps the pair mutually consistent."""
        tables, cat_epochs = database.catalog.snapshot_state()
        entries, reg_epochs = database._results.snapshot_state()
        return cls(
            database,
            version,
            CatalogSnapshot(tables, cat_epochs, database.catalog),
            RegistrySnapshot(entries, reg_epochs),
            lineage_cache=lineage_cache,
            default_options=default_options,
        )

    # -- execution ---------------------------------------------------------

    def sql(self, statement: str, params: Optional[dict] = None, options=None):
        """Parse, bind, and execute one read statement against this
        pinned view (one-shot; the server adds prepared-plan and answer
        memoization on top)."""
        from .sql import parse_sql

        plan = parse_sql(statement, self.catalog, self.results)
        return self.execute_plan(plan, params, options)

    def execute_plan(
        self,
        plan: LogicalPlan,
        params: Optional[dict] = None,
        options=None,
        rewrites: Optional[RewriteIndex] = None,
    ):
        """Execute a bound plan against this pinned view."""
        from .api import ExecOptions, QueryResult, _as_config

        opts = options or self._default_options or ExecOptions()
        if opts.name is not None:
            raise ServingError(
                f"cannot register result {opts.name!r} through a snapshot: "
                "snapshot reads are read-only; submit the statement "
                "through DatabaseServer.write instead"
            )
        executor = self._executor(opts.backend)
        result = executor.execute(
            plan,
            _as_config(opts.capture),
            params,
            late_materialize=opts.late_materialize,
            rewrites=rewrites,
            lineage_cache=self.lineage_cache,
            parallel=opts.parallel,
        )
        return QueryResult(self._database, plan, result, options=opts)

    def _executor(self, backend: str):
        with self._lock:
            executor = self._executors.get(backend)
        if executor is None:
            if backend == "vector":
                from .exec.vector.executor import VectorExecutor

                executor = VectorExecutor(self.catalog, results=self.results)
            elif backend == "compiled":
                from .exec.compiled.executor import CompiledExecutor

                executor = CompiledExecutor(self.catalog, results=self.results)
            else:
                raise PlanError(
                    f"unknown backend {backend!r}; use 'vector' or 'compiled'"
                )
            with self._lock:
                executor = self._executors.setdefault(backend, executor)
        return executor

    # -- answer memo -------------------------------------------------------

    def cached_answer(self, key: object):
        with self._lock:
            return self._answers.get(key)

    def store_answer(self, key: object, result) -> None:
        with self._lock:
            self._answers.setdefault(key, result)

    def __repr__(self) -> str:
        return (
            f"Snapshot(version={self.version}, tables={len(self.catalog._tables)}, "
            f"results={len(self.results)})"
        )


class _Prepared:
    """One server-prepared statement: the bound plan, its rewrite index,
    and its parameter names, shared by every reader and snapshot (plans
    are immutable; stale frozen schemas raise and trigger a re-bind)."""

    __slots__ = ("plan", "rewrites", "param_names", "key")

    def __init__(self, plan: LogicalPlan, key: str):
        from .api import plan_param_names

        self.plan = plan
        self.rewrites = precompute_rewrites(plan)
        self.param_names = plan_param_names(plan)
        self.key = key


def _param_fingerprint(params: Optional[dict]) -> Optional[tuple]:
    """Hashable fingerprint of a parameter binding, or ``None`` when the
    binding resists fingerprinting (then the answer memo is skipped —
    correctness never depends on memoization)."""
    if not params:
        return ()
    items = []
    for name in sorted(params):
        value = params[name]
        if isinstance(value, np.ndarray):
            items.append((name, LineageResolutionCache.subset_key(value)))
        elif isinstance(value, (list, tuple)):
            try:
                items.append((name, ("seq",) + tuple(value)))
            except TypeError:
                return None
        else:
            items.append((name, value))
    key = tuple(items)
    try:
        hash(key)
    except TypeError:
        return None
    return key


def _params_shared_except(params_list, free_name: str) -> bool:
    """Whether every binding in ``params_list`` agrees on every parameter
    except ``free_name`` (the lineage scan's rid subset).

    The batched execution path evaluates shared expressions (predicate,
    group-by keys, projections) once, reading non-rid parameters from the
    first binding — sound only when the bindings genuinely agree.  Arrays
    compare by value (``np.array_equal``); anything that resists
    comparison disqualifies the batch (the caller falls back to the
    per-binding loop, so correctness never depends on this check passing).
    """
    first = params_list[0] or {}
    first_keys = set(first) - {free_name}
    for params in params_list[1:]:
        other = params or {}
        if set(other) - {free_name} != first_keys:
            return False
        for name in first_keys:
            a, b = first[name], other[name]
            if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
                if not np.array_equal(np.asarray(a), np.asarray(b)):
                    return False
            else:
                try:
                    if a != b:
                        return False
                except (TypeError, ValueError):
                    return False
    return True


#: Queue sentinel that stops the writer thread.
_SHUTDOWN = object()


class DatabaseServer:
    """Thread-pool serving front: concurrent snapshot readers, one
    serialized writer, group-committed durability.

    Readers call :meth:`sql` (or :meth:`submit_query` for the pooled
    form) — execution happens against the latest published
    :class:`Snapshot` unless one is passed explicitly (an app pins one
    snapshot across the N per-view statements of a brush so a single
    brush can never straddle an epoch).  Writers submit callables taking
    the database — ``server.write(lambda db: ...)`` — which the writer
    thread applies in order behind the writer lock; each drained batch
    commits under one WAL ``group_commit`` and each applied operation
    publishes a fresh snapshot (``version`` += 1).
    """

    #: Bound on the by-text prepared-plan memo (mirrors Session).
    MAX_STATEMENTS = 256
    #: Bound on per-snapshot memoized answers; mostly relevant for
    #: long-lived explicit snapshots — the rolling latest snapshot is
    #: replaced on every write.
    MAX_ANSWERS = 4096

    def __init__(
        self,
        database,
        readers: int = 4,
        options=None,
        memoize_answers: bool = True,
    ):
        from .api import ExecOptions

        if readers < 1:
            raise ServingError(f"readers must be positive, got {readers}")
        self._db = database
        self.readers = int(readers)
        self._options = options if options is not None else ExecOptions()
        self._memoize_answers = bool(memoize_answers)
        # One rid-resolution cache shared by every snapshot: entries are
        # keyed by the *snapshot* registry epochs (resolve_scan_source
        # threads them through), so readers on different versions hit
        # disjoint entries and a refresh-heavy workload keeps the stable
        # portion warm across epochs.
        self._lineage_cache = LineageResolutionCache(max_entries=2048)
        self._prepared_lock = threading.Lock()
        self._prepared: "OrderedDict[str, _Prepared]" = OrderedDict()
        self._write_lock = threading.Lock()
        self._writes: "queue.SimpleQueue" = queue.SimpleQueue()
        self._version = itertools.count(1)
        self._closed = False
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pool_lock = threading.Lock()
        self._snapshot = self._capture(next(self._version))
        self._writer = threading.Thread(
            target=self._writer_loop, name="repro-serve-writer", daemon=True
        )
        self._writer.start()

    # -- read path ---------------------------------------------------------

    def snapshot(self) -> Snapshot:
        """The latest published snapshot (wait-free: one attribute read)."""
        return self._snapshot

    def sql(
        self,
        statement: str,
        params: Optional[dict] = None,
        options=None,
        snapshot: Optional[Snapshot] = None,
    ):
        """Execute one read statement on the calling thread against
        ``snapshot`` (latest if omitted), through the shared prepared-plan
        memo and the snapshot's answer memo."""
        snap = snapshot if snapshot is not None else self._snapshot
        opts = options if options is not None else self._options
        prepared = self._prepare(statement)
        key = None
        if self._memoize_answers:
            fingerprint = _param_fingerprint(params)
            if fingerprint is not None:
                key = (
                    prepared.key,
                    fingerprint,
                    opts.backend,
                    opts.late_materialize,
                    repr(opts.capture),
                )
                cached = snap.cached_answer(key)
                if cached is not None:
                    return cached
        missing = prepared.param_names - set(params or ())
        if missing:
            raise PlanError(
                f"prepared statement is missing parameter(s) "
                f"{sorted(missing)}; expected {sorted(prepared.param_names)}"
            )
        try:
            result = snap.execute_plan(
                prepared.plan, params, opts, rewrites=prepared.rewrites
            )
        except StaleBindingError:
            # A referenced result/table changed shape since the plan was
            # bound.  Re-bind against the snapshot actually being read
            # and retry once.
            prepared = self._prepare(statement, snapshot=snap, rebind=True)
            result = snap.execute_plan(
                prepared.plan, params, opts, rewrites=prepared.rewrites
            )
        if key is not None and len(snap._answers) < self.MAX_ANSWERS:
            snap.store_answer(key, result)
        return result

    def sql_batch(
        self,
        statement: str,
        params_list,
        options=None,
        snapshot: Optional[Snapshot] = None,
    ):
        """Execute one read statement for N parameter bindings against a
        single pinned snapshot, returning one :class:`QueryResult` per
        binding (in submission order).

        When the prepared plan is the crossfilter re-aggregation shape
        (a batchable pushed lineage subtree — see
        :func:`~repro.exec.late_mat.batchable_pushed`) and the bindings
        agree on every parameter except the lineage scan's rid subset,
        the N resolutions coalesce into **one** CSR backward pass and one
        shared position-domain execution (predicate, gather, key
        evaluation, factorization run once over the union of rid sets;
        per-binding answers fall out of selection vectors).  Anything
        else falls back to per-binding :meth:`sql` — the batch form is an
        optimization, never a semantic change: answers are bit-identical
        to the per-binding loop.
        """
        snap = snapshot if snapshot is not None else self._snapshot
        opts = options if options is not None else self._options
        params_list = list(params_list)
        if not params_list:
            return []
        results = self._try_execute_batch(statement, params_list, opts, snap)
        if results is not None:
            return results
        return [
            self.sql(statement, params, opts, snap) for params in params_list
        ]

    def _try_execute_batch(self, statement, params_list, opts, snap):
        """The coalesced path of :meth:`sql_batch`, or ``None`` when the
        statement/bindings are not batch-eligible (caller falls back)."""
        from time import perf_counter

        from .api import QueryResult, _as_config
        from .exec import morsel
        from .exec.late_mat import batchable_pushed, execute_pushed_batch
        from .exec.timings import EXECUTE, LATE_MAT_SUBTREES, MORSEL_TASKS
        from .exec.vector.executor import ExecResult
        from .expr.ast import Param

        if opts.name is not None or not opts.late_materialize:
            return None
        if opts.backend not in ("vector", "compiled"):
            return None
        if len(params_list) < 2:
            return None
        prepared = self._prepare(statement)
        pushed = prepared.rewrites.lookup(prepared.plan)
        if pushed is None:
            return None
        config = _as_config(opts.capture)
        if not batchable_pushed(pushed, config):
            return None
        rid_param = pushed.scan.rids
        assert isinstance(rid_param, Param)  # guaranteed by batchable_pushed
        if not _params_shared_except(params_list, rid_param.name):
            return None
        for params in params_list:
            missing = prepared.param_names - set(params or ())
            if missing:
                raise PlanError(
                    f"prepared statement is missing parameter(s) "
                    f"{sorted(missing)}; expected {sorted(prepared.param_names)}"
                )
        workers = morsel.resolve_parallel(opts.parallel)
        counter = morsel.MorselCounter() if workers > 1 else None
        start = perf_counter()
        try:
            tables = execute_pushed_batch(
                pushed,
                snap.catalog,
                snap.results,
                params_list,
                workers=workers,
                counter=counter,
                lineage_cache=snap.lineage_cache,
            )
        except StaleBindingError:
            # Let the per-binding fallback re-bind and retry.
            return None
        elapsed = perf_counter() - start
        out = []
        for table in tables:
            timings = {EXECUTE: elapsed, LATE_MAT_SUBTREES: 1.0}
            if counter is not None and counter.tasks:
                timings[MORSEL_TASKS] = float(counter.tasks)
            result = ExecResult(table, None, timings)
            out.append(
                QueryResult(self._db, prepared.plan, result, options=opts)
            )
        return out

    def submit_query(
        self,
        statement: str,
        params: Optional[dict] = None,
        options=None,
        snapshot: Optional[Snapshot] = None,
    ) -> Future:
        """Pooled form of :meth:`sql`: run on one of the server's
        ``readers`` threads, returning a future.

        The closed check and the pool submission happen under one
        ``_pool_lock`` acquisition: a bare ``self._closed`` test followed
        by an unlocked ``pool.submit`` races :meth:`close` — the pool can
        shut down between check and submit, and the caller would see the
        executor's ``RuntimeError("cannot schedule new futures after
        shutdown")`` instead of :class:`ServingError`.
        """
        with self._pool_lock:
            if self._closed:
                raise ServingError("server is closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.readers,
                    thread_name_prefix="repro-serve-reader",
                )
            return self._pool.submit(
                self.sql, statement, params, options, snapshot
            )

    def _prepare(
        self,
        statement: str,
        snapshot: Optional[Snapshot] = None,
        rebind: bool = False,
    ) -> _Prepared:
        from .api import normalize_statement
        from .sql import parse_sql

        key = normalize_statement(statement)
        if not rebind:
            with self._prepared_lock:
                prepared = self._prepared.get(key)
                if prepared is not None:
                    self._prepared.move_to_end(key)
                    return prepared
        snap = snapshot if snapshot is not None else self._snapshot
        prepared = _Prepared(parse_sql(statement, snap.catalog, snap.results), key)
        with self._prepared_lock:
            self._prepared[key] = prepared
            self._prepared.move_to_end(key)
            while len(self._prepared) > self.MAX_STATEMENTS:
                self._prepared.popitem(last=False)
        return prepared

    # -- write path --------------------------------------------------------

    def submit_write(self, fn: Callable[[object], object]) -> Future:
        """Queue one mutation — a callable taking the :class:`Database` —
        for the writer thread; the returned future resolves to the
        callable's return value *after* the batch's WAL fsync."""
        # Check-and-enqueue under the pool lock (shared with close()):
        # otherwise a write submitted between close()'s flag flip and its
        # _SHUTDOWN enqueue lands behind the sentinel and its future
        # never resolves.
        with self._pool_lock:
            if self._closed:
                raise ServingError("server is closed")
            future: Future = Future()
            self._writes.put((future, fn))
        return future

    def write(self, fn: Callable[[object], object]):
        """Synchronous :meth:`submit_write` (waits for the commit)."""
        return self.submit_write(fn).result()

    def register_result(self, name: str, result, pin: bool = False) -> None:
        """Register a prior result through the write path."""
        self.write(lambda db: db.register_result(name, result, pin=pin))

    def sql_write(self, statement: str, params: Optional[dict] = None, options=None):
        """Run a mutating statement (e.g. one that registers its result
        via ``options.name``) through the write path."""
        return self.write(
            lambda db: db.sql(statement, params=params, options=options)
        )

    def _writer_loop(self) -> None:
        while True:
            item = self._writes.get()
            if item is _SHUTDOWN:
                break
            batch = [item]
            stop = False
            while True:
                try:
                    extra = self._writes.get_nowait()
                except queue.Empty:
                    break
                if extra is _SHUTDOWN:
                    stop = True
                    break
                batch.append(extra)
            self._apply_batch(batch)
            if stop:
                break

    def _apply_batch(self, batch) -> None:
        durability = self._db.durability
        commit = durability.group_commit() if durability is not None else nullcontext()
        outcomes = []
        try:
            with self._write_lock:
                with commit:
                    for future, fn in batch:
                        if not future.set_running_or_notify_cancel():
                            continue
                        try:
                            value = fn(self._db)
                        except BaseException as exc:  # delivered via future
                            outcomes.append((future, False, exc))
                        else:
                            outcomes.append((future, True, value))
                        # One published snapshot per applied operation:
                        # version numbers count operations, which is what
                        # the isolation property checks against.
                        self._snapshot = self._capture(next(self._version))
        except BaseException as exc:
            # The commit barrier itself failed (fsync error, injected
            # fault): nothing in this batch is acknowledged as durable.
            for future, _ok, _value in outcomes:
                if not future.done():
                    future.set_exception(exc)
            for future, fn in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        # Acknowledge only after the group fsync: log-before-acknowledge
        # holds for the batch as a unit.
        for future, ok, value in outcomes:
            if ok:
                future.set_result(value)
            else:
                future.set_exception(value)

    def _capture(self, version: int) -> Snapshot:
        return Snapshot.capture(
            self._db,
            version=version,
            lineage_cache=self._lineage_cache,
            default_options=self._options,
        )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Drain queued writes, stop the writer thread, and shut the
        reader pool down.  Idempotent.

        The closed flag flips and the pool handle is detached under
        ``_pool_lock``, so every :meth:`submit_query` /
        :meth:`submit_write` call either completes before the flip (its
        future is honoured: queued writes drain, pooled reads run to
        completion under ``shutdown(wait=True)``) or observes the flag
        and raises :class:`ServingError`.  The blocking work — writer
        join, pool shutdown — happens outside the lock.
        """
        with self._pool_lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
        self._writes.put(_SHUTDOWN)
        self._writer.join()
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "DatabaseServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def stats(self) -> dict:
        """Serving counters (for benchmarks and tests)."""
        return {
            "version": self._snapshot.version,
            "prepared": len(self._prepared),
            "lineage_cache": self._lineage_cache.stats(),
        }
