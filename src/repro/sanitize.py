"""Debug-mode lineage sanitizer (``REPRO_SANITIZE=1``).

The static linter (``tools/lint``) proves call sites *look* safe; this
module checks at runtime that the data flowing through them *is* safe.
With ``REPRO_SANITIZE=1`` in the environment:

* rid arrays handed out by lineage indexes, the resolution cache, and
  registered results are frozen (``flags.writeable = False``) for real,
  so an in-place mutation of shared lineage state raises immediately;
* captured CSR lineage is validated on construction — monotone
  non-negative indptr, in-bounds indices, ``int64`` dtype — instead of
  corrupting downstream joins silently;
* ``Lb``/``Lf`` rid resolutions are bounds-checked against the base
  table's live domain and epoch-checked against the capture epoch.

All checks raise :class:`~repro.errors.SanitizeError`.  The mode is off
by default and every hook is gated on :func:`enabled`, so production
runs pay one cached boolean read per hook.

Tests toggle the mode deterministically with :func:`force`; the nightly
``ci-deep`` Hypothesis suites run entirely under ``REPRO_SANITIZE=1``.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

import numpy as np

from .errors import SanitizeError

#: Environment values that leave the sanitizer off.
_FALSY = frozenset({"", "0", "false", "no", "off"})

#: Tri-state test override: None = follow the environment.
_forced: Optional[bool] = None


def enabled() -> bool:
    """True when sanitizer checks should run."""
    if _forced is not None:
        return _forced
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() not in _FALSY


@contextmanager
def force(value: bool) -> Iterator[None]:
    """Deterministically enable/disable the sanitizer for a test block."""
    global _forced
    previous = _forced
    _forced = bool(value)
    try:
        yield
    finally:
        _forced = previous


def freeze(arr: np.ndarray) -> np.ndarray:
    """Clear the writeable flag of a handed-out array (only when enabled).

    Freezing is best-effort: a view into a buffer we do not own cannot be
    made read-only retroactively and is left as-is.
    """
    if enabled() and isinstance(arr, np.ndarray) and arr.flags.writeable:
        try:
            arr.setflags(write=False)
        except ValueError:
            pass
    return arr


def check_rid_array(values: np.ndarray, context: str = "RidArray") -> None:
    """Validate a 1-to-1 rid array: int64, every entry >= NO_MATCH (-1)."""
    if not enabled():
        return
    if values.dtype != np.int64:
        raise SanitizeError(f"{context}: rid dtype must be int64, got {values.dtype}")
    if values.size and int(values.min()) < -1:
        raise SanitizeError(f"{context}: rid below NO_MATCH (-1): {int(values.min())}")


def check_csr(offsets: np.ndarray, values: np.ndarray, context: str = "RidIndex") -> None:
    """Validate CSR lineage: monotone indptr starting at 0, non-negative
    in-range indices, int64 dtypes."""
    if not enabled():
        return
    if offsets.dtype != np.int64 or values.dtype != np.int64:
        raise SanitizeError(
            f"{context}: CSR dtypes must be int64, got"
            f" offsets={offsets.dtype} values={values.dtype}"
        )
    if offsets.size == 0 or int(offsets[0]) != 0:
        raise SanitizeError(f"{context}: CSR indptr must start at 0")
    if offsets.size > 1 and bool(np.any(np.diff(offsets) < 0)):
        raise SanitizeError(f"{context}: CSR indptr must be monotone non-decreasing")
    if int(offsets[-1]) != values.shape[0]:
        raise SanitizeError(
            f"{context}: CSR indptr end {int(offsets[-1])} !="
            f" values length {values.shape[0]}"
        )
    if values.size and int(values.min()) < 0:
        raise SanitizeError(f"{context}: CSR index below 0: {int(values.min())}")


def check_rid_bounds(rids: np.ndarray, domain: int, context: str) -> None:
    """Validate resolved rids against a base-table domain ``[0, domain)``.

    ``NO_MATCH`` (-1) entries are allowed — 1-to-1 forward lineage uses
    them for filtered-out rows.
    """
    if not enabled():
        return
    if rids.size == 0:
        return
    lo = int(rids.min())
    hi = int(rids.max())
    if lo < -1 or hi >= domain:
        raise SanitizeError(
            f"{context}: resolved rid out of bounds for domain {domain}:"
            f" min={lo} max={hi}"
        )


def check_recovered_index(index, context: str = "recovered index") -> None:
    """Validate a lineage index deserialized from durable storage.

    Unlike every other hook in this module, this check runs
    **unconditionally**: bytes read back from disk are untrusted input
    (torn writes, bit rot, a foreign archive), and the cost is paid only
    on the recovery path, never per query.  ``index`` is duck-typed — a
    CSR index exposes ``offsets``/``values``, a 1-to-1 array only
    ``values`` — so this stays import-cycle-free with
    :mod:`repro.lineage.indexes`.
    """
    with force(True):
        if hasattr(index, "offsets"):
            check_csr(index.offsets, index.values, context)
        else:
            check_rid_array(index.values, context)


def check_epoch(captured: Optional[int], live: int, relation: str, context: str) -> None:
    """Validate that a rid resolution's capture epoch matches the live
    catalog epoch (``None`` = capture predates epoch recording)."""
    if not enabled():
        return
    if captured is not None and captured != live:
        raise SanitizeError(
            f"{context}: lineage for {relation!r} captured at epoch"
            f" {captured} but relation is at epoch {live}"
        )
