"""The compiled (produce/consume) execution engine.

This backend is the faithful, reference realization of the paper's
architecture (Figure 2): every query block becomes generated Python whose
loops interleave relational work and lineage writes exactly as the
Section 3.2 / Appendix F listings do.  Plans are split into *blocks* at
pipeline breakers — group-by, distinct projection, and set operations —
and each block's local lineage is composed with its children's end-to-end
lineage (Section 3.3 propagation), so only output↔base indexes survive.

Capture here is always Inject-shaped; Defer is a scheduling optimization,
not a semantic one, so the vector backend owns that distinction.  Results
(tables and lineage query answers) are bit-identical to the vector
backend — invariant I3, enforced by the property test suite.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Tuple

import numpy as np

from ...errors import PlanError
from ...lineage.capture import CaptureConfig
from ...lineage.composer import NodeLineage, compose_node, selection_locals
from ...lineage.indexes import (
    RidArray,
    RidIndex,
    invert_rid_array,
    invert_rid_index,
)
from ...plan.logical import (
    CrossProduct,
    GroupBy,
    HashJoin,
    LineageScan,
    LogicalPlan,
    Project,
    Scan,
    Select,
    SetOp,
    Sort,
    ThetaJoin,
    assign_source_keys,
)
from ...lineage.cache import LineageResolutionCache
from ...plan.rewrite import RewriteIndex, match_late_materialization
from ...plan.schema import infer_schema, join_output_fields
from ...storage.catalog import Catalog
from ...storage.table import ColumnType, Schema, Table
from .. import morsel
from ..late_mat import PushedStats, execute_pushed, fold_push_stats
from ..lineage_scan import execute_lineage_scan
from ..timings import (
    EXECUTE,
    LATE_MAT_DISTINCTS,
    LATE_MAT_JOINS,
    LATE_MAT_SUBTREES,
    MORSEL_TASKS,
)
from ..vector.executor import ExecResult, check_relation_pruning
from .codegen import (
    CodeContext,
    CollectNode,
    Emitter,
    GroupByNode,
    HashJoinNode,
    NestedLoopJoinNode,
    ProjectNode,
    SelectNode,
    SourceNode,
    compile_source,
)
from .setops_ref import reference_setop

_PER_ROW = (Scan, Select, HashJoin, ThetaJoin, CrossProduct)


def _is_per_row(plan: LogicalPlan) -> bool:
    if isinstance(plan, Project):
        return not plan.distinct
    return isinstance(plan, _PER_ROW)


class CompiledExecutor:
    """Executes logical plans via produce/consume Python code generation.

    ``results`` is the registry of named prior query results consulted by
    :class:`~repro.plan.logical.LineageScan` leaves at execution time.
    """

    def __init__(self, catalog: Catalog, results=None):
        self.catalog = catalog
        self.results = results
        self.last_source: Optional[str] = None  # generated code, for tests/docs

    def execute(
        self,
        plan: LogicalPlan,
        capture: Optional[CaptureConfig] = None,
        params: Optional[dict] = None,
        late_materialize: bool = True,
        rewrites: Optional[RewriteIndex] = None,
        lineage_cache: Optional[LineageResolutionCache] = None,
        parallel: Optional[int] = None,
    ) -> ExecResult:
        """Run ``plan``.  ``rewrites`` / ``lineage_cache`` are the
        prepared-statement fast-path handles (see the vector backend).
        ``parallel`` morsel-parallelizes the shared pushed path only —
        the per-row codegen pipeline stays serial by design (its
        generated loops carry cross-row state)."""
        config = capture or CaptureConfig.none()
        workers = morsel.resolve_parallel(parallel)
        scan_keys = assign_source_keys(plan)
        # Validate pruning entries up front: a misspelled `relations`
        # entry must not discard a finished (possibly expensive) run.
        check_relation_pruning(config, plan, scan_keys, self.catalog, self.results)
        start = time.perf_counter()
        state = _ExecState(
            self, config, params, late_materialize,
            rewrites=rewrites, cache=lineage_cache,
            workers=workers,
            morsel_counter=morsel.MorselCounter() if workers > 1 else None,
        )
        table, node = state.run(plan, scan_keys)
        elapsed = time.perf_counter() - start
        lineage = node.to_query_lineage() if config.enabled else None
        timings = {EXECUTE: elapsed}
        if state.pushed_subtrees:
            timings[LATE_MAT_SUBTREES] = float(state.pushed_subtrees)
        if state.pushed_joins:
            timings[LATE_MAT_JOINS] = float(state.pushed_joins)
        if state.pushed_distincts:
            timings[LATE_MAT_DISTINCTS] = float(state.pushed_distincts)
        fold_push_stats(timings, state.push_stats)
        if state.morsel_counter is not None and state.morsel_counter.tasks:
            timings[MORSEL_TASKS] = float(state.morsel_counter.tasks)
        return ExecResult(table, lineage, timings)


class _ExecState:
    def __init__(
        self,
        executor: CompiledExecutor,
        config: CaptureConfig,
        params,
        late_mat: bool = True,
        rewrites: Optional[RewriteIndex] = None,
        cache: Optional[LineageResolutionCache] = None,
        workers: int = 1,
        morsel_counter: Optional[morsel.MorselCounter] = None,
    ):
        self.executor = executor
        self.catalog = executor.catalog
        self.config = config
        self.params = params
        self.late_mat = bool(late_mat)
        self.rewrites = rewrites
        self.cache = cache
        self.workers = workers
        self.morsel_counter = morsel_counter
        self.pushed_subtrees = 0
        self.pushed_joins = 0
        self.pushed_distincts = 0
        self.push_stats = PushedStats()
        self.scan_keys = None
        self._scan_counter = 0
        self._tmp_counter = 0

    def _match(self, plan: LogicalPlan):
        """Late-materialization decision — precomputed index when the
        statement was prepared, else matched live (see the vector
        backend's ``_RunState.match``)."""
        if not self.late_mat:
            return None
        if self.rewrites is not None:
            return self.rewrites.lookup(plan)
        return match_late_materialization(plan)

    # -- key assignment (must match the vector executor's pre-order scheme) --

    def _next_scan_key(self) -> str:
        key = self.scan_keys[self._scan_counter]
        self._scan_counter += 1
        return key

    def run(self, plan: LogicalPlan, scan_keys) -> Tuple[Table, NodeLineage]:
        # Pre-order key assignment shared with the vector executor, so the
        # two backends agree on occurrence keys by construction.
        self.scan_keys = scan_keys
        return self._exec(plan)

    # -- recursive block execution ---------------------------------------------

    def _exec(self, plan: LogicalPlan) -> Tuple[Table, NodeLineage]:
        # Late materialization: a Select/Project/GroupBy tree over a
        # lineage scan — or over a hash join with lineage-backed
        # inputs — runs in the rid domain via the shared pushed path
        # (backend-agnostic, like execute_lineage_scan), instead of
        # compiling per-row code over a materialized subset.  A join's
        # non-lineage input re-enters this recursion via run_child.
        pushed = self._match(plan)
        if pushed is not None:
            self.pushed_subtrees += 1
            if pushed.has_join:
                self.pushed_joins += 1
            if pushed.has_distinct:
                self.pushed_distincts += 1
            return execute_pushed(
                pushed,
                self.catalog,
                self.executor.results,
                self.config,
                self.params,
                next_key=self._next_scan_key,
                run_child=self._exec,
                cache=self.cache,
                stats=self.push_stats,
                workers=self.workers,
                counter=self.morsel_counter,
            )

        if isinstance(plan, SetOp):
            left_t, left_n = self._exec(plan.left)
            right_t, right_n = self._exec(plan.right)
            out, (l_bw, l_fw, r_bw, r_fw) = reference_setop(
                plan.op, plan.all, left_t, right_t, self.config
            )
            node = NodeLineage(output_size=out.num_rows)
            for side, bw, fw in ((left_n, l_bw, l_fw), (right_n, r_bw, r_fw)):
                # Difference captures nothing for B (paper F.5, both bag
                # and set): drop the right side rather than letting its
                # absent locals read as identity maps.
                keep = not (plan.op == "except" and side is right_n)
                node.absorb(side, bw, fw, indexes=keep)
            return out, node

        if isinstance(plan, LineageScan):
            key = self._next_scan_key()
            return execute_lineage_scan(
                plan, key, self.catalog, self.executor.results, self.config,
                self.params, cache=self.cache,
            )

        if isinstance(plan, Sort):
            child_table, child_node = self._exec(plan.child)
            from ..vector.sort import execute_sort

            out, local_bw, local_fw = execute_sort(child_table, plan, self.config)
            return out, compose_node(out.num_rows, child_node, local_bw, local_fw)

        if isinstance(plan, GroupBy):
            return self._exec_groupby_block(plan, plan.child, plan.keys, plan.aggs, plan.having)

        if isinstance(plan, Project) and plan.distinct:
            return self._exec_groupby_block(plan, plan.child, plan.exprs, (), None)

        if _is_per_row(plan):
            return self._exec_per_row_block(plan)

        raise PlanError(f"compiled backend cannot execute {plan!r}")

    # -- per-row block -------------------------------------------------------------

    def _exec_per_row_block(self, plan: LogicalPlan) -> Tuple[Table, NodeLineage]:
        ctx = CodeContext()
        sources: Dict[str, Dict[str, np.ndarray]] = {}
        child_lineage: Dict[str, NodeLineage] = {}
        emitter, out_schema = self._build_emitter(plan, ctx, sources, child_lineage)
        collect = CollectNode(out_schema.names, sorted(child_lineage))
        collect.setup(ctx)
        _link(emitter, collect)
        emitter.produce(ctx)
        source = ctx.render()
        self.executor.last_source = source
        fn = compile_source(source)
        cols, lins = fn(sources, self.params)
        table = _lists_to_table(cols, out_schema)
        node = self._assemble(table.num_rows, lins, child_lineage, per_row=True)
        return table, node

    def _exec_groupby_block(
        self, plan: LogicalPlan, child: LogicalPlan, keys, aggs, having
    ) -> Tuple[Table, NodeLineage]:
        ctx = CodeContext()
        sources: Dict[str, Dict[str, np.ndarray]] = {}
        child_lineage: Dict[str, NodeLineage] = {}
        emitter, _ = self._build_emitter(child, ctx, sources, child_lineage)
        root = GroupByNode(keys, aggs, sorted(child_lineage), self.params)
        root.setup(ctx)
        _link(emitter, root)
        emitter.produce(ctx)
        source = ctx.render()
        self.executor.last_source = source
        fn = compile_source(source)
        out_schema = infer_schema(plan, self.catalog)
        cols, buckets = fn(sources, self.params)
        table = _lists_to_table(cols, out_schema)
        node = self._assemble(table.num_rows, buckets, child_lineage, per_row=False)
        if having is not None:
            from ...expr.ast import evaluate

            keep = np.asarray(evaluate(having, table, self.params), dtype=bool)
            kept = np.nonzero(keep)[0].astype(np.int64)
            local_bw, local_fw = selection_locals(kept, keep.shape[0], self.config)
            table = table.take(kept)
            node = compose_node(
                table.num_rows, node, local_bw, local_fw
            ) if self.config.enabled else NodeLineage(output_size=table.num_rows)
        return table, node

    # -- emitter construction ---------------------------------------------------------

    def _build_emitter(
        self,
        plan: LogicalPlan,
        ctx: CodeContext,
        sources: Dict[str, Dict[str, np.ndarray]],
        child_lineage: Dict[str, NodeLineage],
    ) -> Tuple[Emitter, Schema]:
        """Build the per-row emitter tree for ``plan``; breaker children are
        materialized recursively and become block sources."""
        if self._match(plan) is not None:
            # A pushed lineage-scan stack inside a per-row tree (e.g. the
            # Lb side of a join) enters the block like a breaker child:
            # _exec routes it through the pushed path and its narrow
            # output becomes a pre-lineaged source.
            return self._materialized_source(plan, sources, child_lineage)

        if isinstance(plan, Scan):
            key = self._next_scan_key()
            table, epoch = self.catalog.get_versioned(plan.table)
            src_name = key
            sources[src_name] = table.columns()
            captured = self.config.captures_relation(key, plan.table, plan.alias)
            lineage_key = src_name if (self.config.enabled and captured) else None
            if lineage_key:
                child_lineage[src_name] = NodeLineage.for_scan(
                    key,
                    plan.table,
                    table.num_rows,
                    backward=self.config.backward,
                    forward=self.config.forward,
                    alias=plan.alias,
                    epoch=epoch,
                )
            return SourceNode(src_name, table.schema.names, lineage_key), table.schema

        if isinstance(plan, Select):
            child, schema = self._build_emitter(plan.child, ctx, sources, child_lineage)
            node = SelectNode(plan.predicate, self.params)
            _link(child, node)
            node.child = child
            return node, schema

        if isinstance(plan, Project) and not plan.distinct:
            child, schema = self._build_emitter(plan.child, ctx, sources, child_lineage)
            node = ProjectNode(plan.exprs, self.params)
            _link(child, node)
            node.child = child
            out_schema = infer_schema(plan, self.catalog) if isinstance(plan.child, Scan) else None
            # infer via expression types against child schema:
            from ...plan.schema import infer_expr_type

            out_schema = Schema(
                [(alias, infer_expr_type(e, schema)) for e, alias in plan.exprs]
            )
            return node, out_schema

        if isinstance(plan, (HashJoin, ThetaJoin, CrossProduct)):
            left, left_schema = self._build_emitter(plan.left, ctx, sources, child_lineage)
            right, right_schema = self._build_emitter(plan.right, ctx, sources, child_lineage)
            fields = join_output_fields(left_schema, right_schema)
            out_schema = Schema([(n, t) for n, t, _ in fields])
            rename = {
                out_name: src
                for (out_name, _, side), src in zip(
                    fields, left_schema.names + right_schema.names, strict=True
                )
                if side == "right"
            }
            if isinstance(plan, HashJoin):
                node = HashJoinNode(plan.left_keys, plan.right_keys, plan.pkfk, rename)
            else:
                predicate = plan.predicate if isinstance(plan, ThetaJoin) else None
                node = NestedLoopJoinNode(predicate, rename, self.params)
            node.left = left
            node.right = right
            _link(left, node)
            _link(right, node)
            return node, out_schema

        # Breaker child: materialize and register as an intermediate source.
        return self._materialized_source(plan, sources, child_lineage)

    def _materialized_source(
        self,
        plan: LogicalPlan,
        sources: Dict[str, Dict[str, np.ndarray]],
        child_lineage: Dict[str, NodeLineage],
    ) -> Tuple[Emitter, Schema]:
        """Execute a subtree eagerly and register its output (and lineage)
        as a block source — breaker children and pushed lineage stacks."""
        table, node_lineage = self._exec(plan)
        src_name = f"__tmp{self._tmp_counter}"
        self._tmp_counter += 1
        sources[src_name] = table.columns()
        has_lineage = self.config.enabled and (
            node_lineage.backward or node_lineage.forward
        )
        if has_lineage:
            child_lineage[src_name] = node_lineage
        return (
            SourceNode(src_name, table.schema.names, src_name if has_lineage else None),
            table.schema,
        )

    # -- lineage assembly ---------------------------------------------------------------

    def _assemble(
        self,
        n_out: int,
        lins: Dict[str, list],
        child_lineage: Dict[str, NodeLineage],
        per_row: bool,
    ) -> NodeLineage:
        node = NodeLineage(output_size=n_out)
        if not self.config.enabled:
            return node
        for src_name, child in child_lineage.items():
            if per_row:
                values = np.asarray(lins[src_name], dtype=np.int64)
                local_bw = RidArray(values)
                local_fw = invert_rid_array(local_bw, child.output_size)
            else:
                buckets = lins[src_name]
                local_bw = RidIndex.from_buckets(
                    [np.asarray(b, dtype=np.int64) for b in buckets]
                )
                # A block-source row can reach *several* groups when an
                # m:n join sits inside the block (one probe row fans out
                # to many join outputs, which may land in different
                # buckets), so the local forward map is 1-to-N: invert
                # the bucket index rather than scattering into a rid
                # array, where later groups would overwrite earlier ones.
                local_fw = invert_rid_index(local_bw, child.output_size)
            node.absorb(child, local_bw, local_fw)
        return node


def _link(child: Emitter, parent: Emitter) -> None:
    child.parent = parent


def _lists_to_table(cols: Dict[str, list], schema: Schema) -> Table:
    arrays = {}
    for name, ctype in schema.fields:
        values = cols[name]
        if ctype is ColumnType.STR:
            arr = np.empty(len(values), dtype=object)
            arr[:] = values
        else:
            arr = np.asarray(values, dtype=ctype.numpy_dtype)
        arrays[name] = arr
    return Table(arrays, schema)
