"""Produce/consume code generation (paper Appendix A).

This backend transpiles a query *block* into one Python function whose
structure mirrors the paper's compiled plans: one ``for`` loop per
pipeline, pipeline breakers (hash-table builds) materializing between
loops, and lineage capture inlined in the same loops (the Inject listings
of Section 3.2 and Appendix F).  Python is our IR instead of C++/LLVM; the
*shape* of the emitted code is the point — tight integration with zero
cross-subsystem calls per tuple — while raw speed is the vector backend's
job (DESIGN.md, substitution 1).

A block is a tree of per-row operators (scan, select, bag project, hash /
θ / cross joins) optionally rooted at one group-by.  Each operator
contributes code through the classic two calls:

* ``produce(ctx)`` — emit the code that drives its input(s);
* ``consume(ctx, row)`` — emit the code that handles one row, then call
  the parent's ``consume``.

``row`` carries the current column bindings *and* the current lineage
bindings: one rid expression per lineage source, which is exactly the
"propagate rids that point to R rather than the intermediate relation"
behaviour of Section 3.3.

Late-materialized lineage-scan stacks (:mod:`repro.plan.rewrite`) never
reach code generation: the executor materializes them through the
backend-agnostic pushed path (:mod:`repro.exec.late_mat`) and hands this
module a pre-lineaged ``SourceNode`` — the same contract breaker
children use — so generated blocks only ever loop over plain columnar
sources.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ...errors import PlanError
from ...expr.ast import Expr
from ...expr.compile import to_source
from ...plan.logical import AggCall

# ---------------------------------------------------------------------------


@dataclass
class Row:
    """Compile-time description of the tuple flowing through a pipeline.

    ``cols`` maps output column names to source expressions valid at the
    current program point; ``lins`` maps lineage source keys to rid
    expressions.
    """

    cols: Dict[str, str]
    lins: Dict[str, str]


class CodeContext:
    """Accumulates generated source and compiles it."""

    def __init__(self):
        self.lines: List[str] = []
        self.indent = 1
        self._counter = 0
        self.prologue: List[str] = []
        self.epilogue: List[str] = []

    def fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def block(self, header: str) -> "_Block":
        return _Block(self, header)

    def render(self, name: str = "__block") -> str:
        body = (
            [f"def {name}(sources, params):"]
            + ["    " + l for l in self.prologue]
            + self.lines
            + ["    " + l for l in self.epilogue]
        )
        return "\n".join(body) + "\n"


class _Block:
    def __init__(self, ctx: CodeContext, header: str):
        self.ctx = ctx
        self.header = header

    def __enter__(self):
        self.ctx.emit(self.header)
        self.ctx.indent += 1
        return self

    def __exit__(self, *exc):
        self.ctx.indent -= 1
        return False


def compile_source(source: str, name: str = "__block") -> Callable:
    """Compile generated source into a callable (the "machine code")."""
    namespace = {"_sqrt": math.sqrt, "_floor": math.floor}
    code = compile(source, f"<repro-codegen:{name}>", "exec")
    exec(code, namespace)
    return namespace[name]


# -- operator emitters -------------------------------------------------------
#
# Emitters form a linked parent chain; ``SourceNode`` leaves drive the
# loops.  All state (hash tables, output lists) lives in generated locals.


class Emitter:
    parent: Optional["Emitter"] = None

    def produce(self, ctx: CodeContext) -> None:
        raise NotImplementedError

    def consume(self, ctx: CodeContext, row: Row) -> None:
        raise NotImplementedError


class SourceNode(Emitter):
    """Scan over a named source table (base relation or materialized
    intermediate).  ``lineage_key`` is None when this source's lineage is
    pruned."""

    def __init__(self, source_name: str, columns: Sequence[str], lineage_key: Optional[str]):
        self.source_name = source_name
        self.columns = list(columns)
        self.lineage_key = lineage_key

    def produce(self, ctx: CodeContext) -> None:
        arr = ctx.fresh("src")
        ctx.prologue.append(f"{arr} = sources[{self.source_name!r}]")
        i = ctx.fresh("i")
        cols = {}
        for c in self.columns:
            var = f"{arr}_{c}"
            ctx.prologue.append(f"{var} = {arr}[{c!r}]")
            cols[c] = f"{var}[{i}]"
        n = f"len({arr}[{self.columns[0]!r}])" if self.columns else "0"
        with ctx.block(f"for {i} in range({n}):"):
            lins = {self.lineage_key: i} if self.lineage_key else {}
            self.parent.consume(ctx, Row(cols=cols, lins=lins))


class SelectNode(Emitter):
    """``if predicate:`` guard inlined into the enclosing loop."""

    def __init__(self, predicate: Expr, params: Optional[dict]):
        self.predicate = predicate
        self.params = params

    def produce(self, ctx: CodeContext) -> None:
        self.child.produce(ctx)

    def consume(self, ctx: CodeContext, row: Row) -> None:
        pred = to_source(self.predicate, lambda c: _colref(row, c), self.params)
        with ctx.block(f"if {pred}:"):
            self.parent.consume(ctx, row)


class ProjectNode(Emitter):
    """Bag projection: rebind column names; lineage flows unchanged."""

    def __init__(self, exprs: Sequence[Tuple[Expr, str]], params: Optional[dict]):
        self.exprs = list(exprs)
        self.params = params

    def produce(self, ctx: CodeContext) -> None:
        self.child.produce(ctx)

    def consume(self, ctx: CodeContext, row: Row) -> None:
        cols = {}
        for expr, alias in self.exprs:
            src = to_source(expr, lambda c: _colref(row, c), self.params)
            var = ctx.fresh("p")
            ctx.emit(f"{var} = {src}")
            cols[alias] = var
        self.parent.consume(ctx, Row(cols=cols, lins=row.lins))


class HashJoinNode(Emitter):
    """Hash join: build on the left pipeline, probe from the right.

    The hash entry holds the build row's columns *and* its lineage rids
    (the ``i_rids`` augmentation of Figure 4d / Listing 10); pk-fk entries
    hold a single row (the "replace rid arrays with a single integer"
    optimization of Section 3.2.4).
    """

    def __init__(
        self,
        left_keys: Sequence[str],
        right_keys: Sequence[str],
        pkfk: bool,
        rename: Dict[str, str],
    ):
        self.left_keys = list(left_keys)
        self.right_keys = list(right_keys)
        self.pkfk = pkfk
        self.rename = rename  # right-side output name -> right source name
        self._ht = None
        self._left_cols: List[str] = []
        self._left_lins: List[str] = []

    def produce(self, ctx: CodeContext) -> None:
        self._ht = ctx.fresh("ht")
        ctx.prologue.append(f"{self._ht} = {{}}")
        self._phase = "build"
        self.left.produce(ctx)
        self._phase = "probe"
        self.right.produce(ctx)

    def consume(self, ctx: CodeContext, row: Row) -> None:
        if self._phase == "build":
            self._consume_build(ctx, row)
        else:
            self._consume_probe(ctx, row)

    def _consume_build(self, ctx: CodeContext, row: Row) -> None:
        self._left_cols = list(row.cols)
        self._left_lins = list(row.lins)
        key = _key_tuple(row, self.left_keys)
        payload = (
            "(" + ", ".join([row.cols[c] for c in self._left_cols]
                            + [row.lins[k] for k in self._left_lins]) + ",)"
        )
        if self.pkfk:
            ctx.emit(f"{self._ht}[{key}] = {payload}")
        else:
            ctx.emit(f"{self._ht}.setdefault({key}, []).append({payload})")

    def _consume_probe(self, ctx: CodeContext, row: Row) -> None:
        key = _key_tuple(row, self.right_keys)
        entry = ctx.fresh("e")
        if self.pkfk:
            ctx.emit(f"{entry} = {self._ht}.get({key})")
            with ctx.block(f"if {entry} is not None:"):
                self._emit_match(ctx, row, entry)
        else:
            with ctx.block(f"for {entry} in {self._ht}.get({key}, ()):"):
                self._emit_match(ctx, row, entry)

    def _emit_match(self, ctx: CodeContext, row: Row, entry: str) -> None:
        cols = {}
        for pos, name in enumerate(self._left_cols):
            cols[name] = f"{entry}[{pos}]"
        for out_name, src_name in self.rename.items():
            cols[out_name] = row.cols[src_name]
        lins = {}
        base = len(self._left_cols)
        for pos, key in enumerate(self._left_lins):
            lins[key] = f"{entry}[{base + pos}]"
        lins.update(row.lins)
        self.parent.consume(ctx, Row(cols=cols, lins=lins))


class NestedLoopJoinNode(Emitter):
    """θ-join / cross product (Listing 7's doubly-nested loops).

    The *right* pipeline is buffered first, then the left pipeline drives
    the outer loop with the buffered rows iterated inside it, so output is
    emitted in left-major order — the order Listing 7 produces and the
    vector backend matches.
    """

    def __init__(self, predicate: Optional[Expr], rename: Dict[str, str], params: Optional[dict]):
        self.predicate = predicate
        self.rename = rename  # right-side output name -> right source name
        self.params = params
        self._buffer = None
        self._right_cols: List[str] = []
        self._right_lins: List[str] = []

    def produce(self, ctx: CodeContext) -> None:
        self._buffer = ctx.fresh("buf")
        ctx.prologue.append(f"{self._buffer} = []")
        self._phase = "buffer"
        self.right.produce(ctx)
        self._phase = "loop"
        self.left.produce(ctx)

    def consume(self, ctx: CodeContext, row: Row) -> None:
        if self._phase == "buffer":
            self._right_cols = list(row.cols)
            self._right_lins = list(row.lins)
            payload = (
                "(" + ", ".join([row.cols[c] for c in self._right_cols]
                                + [row.lins[k] for k in self._right_lins]) + ",)"
            )
            ctx.emit(f"{self._buffer}.append({payload})")
            return
        entry = ctx.fresh("e")
        with ctx.block(f"for {entry} in {self._buffer}:"):
            cols = dict(row.cols)
            inverse = {src: out for out, src in self.rename.items()}
            for pos, name in enumerate(self._right_cols):
                cols[inverse.get(name, name)] = f"{entry}[{pos}]"
            lins = dict(row.lins)
            base = len(self._right_cols)
            for pos, key in enumerate(self._right_lins):
                lins[key] = f"{entry}[{base + pos}]"
            if self.predicate is not None:
                pred = to_source(
                    self.predicate, lambda c: _colref(Row(cols, lins), c), self.params
                )
                with ctx.block(f"if {pred}:"):
                    self.parent.consume(ctx, Row(cols=cols, lins=lins))
            else:
                self.parent.consume(ctx, Row(cols=cols, lins=lins))


class CollectNode(Emitter):
    """Root of a per-row block: append output values and lineage rids.

    Generates Listing-2-style serial writes: output columns and backward
    rid lists grow in lockstep, so alignment between output rid ``k`` and
    its lineage is positional.
    """

    def __init__(self, out_columns: Sequence[str], lineage_keys: Sequence[str]):
        self.out_columns = list(out_columns)
        self.lineage_keys = list(lineage_keys)

    def produce(self, ctx: CodeContext) -> None:  # pragma: no cover
        raise PlanError("CollectNode is a sink; produce() starts at sources")

    def setup(self, ctx: CodeContext) -> None:
        self._col_vars = {}
        for c in self.out_columns:
            var = ctx.fresh("out")
            ctx.prologue.append(f"{var} = []")
            self._col_vars[c] = var
        self._lin_vars = {}
        for k in self.lineage_keys:
            var = ctx.fresh("bw")
            ctx.prologue.append(f"{var} = []")
            self._lin_vars[k] = var
        cols = "{" + ", ".join(f"{c!r}: {v}" for c, v in self._col_vars.items()) + "}"
        lins = "{" + ", ".join(f"{k!r}: {v}" for k, v in self._lin_vars.items()) + "}"
        ctx.epilogue.append(f"return {cols}, {lins}")

    def consume(self, ctx: CodeContext, row: Row) -> None:
        for c in self.out_columns:
            ctx.emit(f"{self._col_vars[c]}.append({row.cols[c]})")
        for k in self.lineage_keys:
            ctx.emit(f"{self._lin_vars[k]}.append({row.lins[k]})")


class GroupByNode(Emitter):
    """Group-by root: Listing 8's γ_ht build with ``rids`` per group.

    The hash entry is ``[key..., agg states..., rid lists per source]``;
    the epilogue is the γ_agg scan emitting output rows, finalizing
    aggregates, and handing buckets over as the backward index.
    """

    def __init__(
        self,
        keys: Sequence[Tuple[Expr, str]],
        aggs: Sequence[AggCall],
        lineage_keys: Sequence[str],
        params: Optional[dict],
    ):
        self.keys = list(keys)
        self.aggs = list(aggs)
        self.lineage_keys = list(lineage_keys)
        self.params = params

    def produce(self, ctx: CodeContext) -> None:  # pragma: no cover
        raise PlanError("GroupByNode is a sink; produce() starts at sources")

    def setup(self, ctx: CodeContext) -> None:
        self._ht = ctx.fresh("ght")
        ctx.prologue.append(f"{self._ht} = {{}}")
        # Epilogue: γ_agg scan over insertion-ordered dict.
        key_names = [a for _, a in self.keys]
        out_cols = key_names + [a.alias for a in self.aggs]
        lines = []
        lines.append(
            "out = {"
            + ", ".join(f"{c!r}: []" for c in out_cols)
            + "}"
        )
        lines.append(
            "buckets = {" + ", ".join(f"{k!r}: []" for k in self.lineage_keys) + "}"
        )
        lines.append(f"for _k, _st in {self._ht}.items():")
        for pos, name in enumerate(key_names):
            lines.append(f"    out[{name!r}].append(_k[{pos}])")
        for pos, agg in enumerate(self.aggs):
            lines.append(f"    out[{agg.alias!r}].append({_agg_final(agg, pos)})")
        n_aggs = len(self.aggs)
        for pos, k in enumerate(self.lineage_keys):
            lines.append(f"    buckets[{k!r}].append(_st[{n_aggs + pos}])")
        lines.append("return out, buckets")
        ctx.epilogue.extend(lines)

    def consume(self, ctx: CodeContext, row: Row) -> None:
        key_src = _key_tuple_exprs(
            [to_source(e, lambda c: _colref(row, c), self.params) for e, _ in self.keys]
        )
        st = ctx.fresh("st")
        inits = [_agg_init(a) for a in self.aggs] + ["[]" for _ in self.lineage_keys]
        ctx.emit(f"{st} = {self._ht}.get({key_src})")
        with ctx.block(f"if {st} is None:"):
            ctx.emit(f"{st} = [{', '.join(inits)}]")
            ctx.emit(f"{self._ht}[{key_src}] = {st}")
        for pos, agg in enumerate(self.aggs):
            arg = (
                to_source(agg.arg, lambda c: _colref(row, c), self.params)
                if agg.arg is not None
                else None
            )
            for line in _agg_update(agg, pos, st, arg):
                ctx.emit(line)
        n_aggs = len(self.aggs)
        for pos, k in enumerate(self.lineage_keys):
            ctx.emit(f"{st}[{n_aggs + pos}].append({row.lins[k]})")


# -- small helpers ------------------------------------------------------------


def _colref(row: Row, name: str) -> str:
    try:
        return row.cols[name]
    except KeyError:
        raise PlanError(
            f"column {name!r} not in scope; have {sorted(row.cols)}"
        ) from None


def _key_tuple(row: Row, names: Sequence[str]) -> str:
    return _key_tuple_exprs([row.cols[n] for n in names])


def _key_tuple_exprs(exprs: Sequence[str]) -> str:
    if len(exprs) == 1:
        return f"({exprs[0]},)"
    return "(" + ", ".join(exprs) + ")"


def _agg_init(agg: AggCall) -> str:
    return {
        "count": "0",
        "sum": "0",
        "avg": "[0, 0]",
        "min": "None",
        "max": "None",
        "count_distinct": "set()",
    }[agg.func]


def _agg_update(agg: AggCall, pos: int, st: str, arg: Optional[str]) -> List[str]:
    slot = f"{st}[{pos}]"
    if agg.func == "count":
        return [f"{slot} += 1"]
    if agg.func == "sum":
        return [f"{slot} += {arg}"]
    if agg.func == "avg":
        return [f"{slot}[0] += {arg}", f"{slot}[1] += 1"]
    if agg.func == "min":
        return [f"if {slot} is None or {arg} < {slot}: {st}[{pos}] = {arg}"]
    if agg.func == "max":
        return [f"if {slot} is None or {arg} > {slot}: {st}[{pos}] = {arg}"]
    if agg.func == "count_distinct":
        return [f"{slot}.add({arg})"]
    raise PlanError(f"unknown aggregate {agg.func!r}")


def _agg_final(agg: AggCall, pos: int) -> str:
    slot = f"_st[{pos}]"
    if agg.func == "avg":
        return f"({slot}[0] / {slot}[1])"
    if agg.func == "count_distinct":
        return f"len({slot})"
    return slot
