"""Reference set/bag operations following the Appendix F listings.

These are deliberate, line-by-line Python transcriptions of the paper's
Inject pseudocode (Listings 2, 4, and the bag variants): build a hash
table over the left relation's rows, probe/append with the right relation,
scan the table to emit output plus lineage.  They serve as the semantic
ground truth the vectorized implementations are property-tested against.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ...errors import PlanError
from ...lineage.capture import CaptureConfig
from ...lineage.indexes import NO_MATCH, RidArray, RidIndex, invert_rid_array
from ...storage.table import Table, concat_tables

Locals = Tuple[object, object, object, object]


def _rows(table: Table) -> List[tuple]:
    return table.to_rows()


def _emit(left: Table, rows: List[tuple]) -> Table:
    return Table.from_rows(left.schema, rows)


def reference_setop(
    op: str, all_: bool, left: Table, right: Table, config: CaptureConfig
) -> Tuple[Table, Locals]:
    if op == "union":
        return (_bag_union if all_ else _set_union)(left, right, config)
    if op == "intersect":
        return (_bag_intersect if all_ else _set_intersect)(left, right, config)
    if op == "except":
        return (_bag_except if all_ else _set_except)(left, right, config)
    raise PlanError(f"unknown set operation {op!r}")


def _locals_from_forward(
    fw_vals: List[int], n_out: int, config: CaptureConfig
) -> Tuple[Optional[RidIndex], Optional[RidArray]]:
    arr = RidArray(np.asarray(fw_vals, dtype=np.int64))
    bw = invert_rid_array(arr, n_out) if config.backward else None
    fw = arr if config.forward else None
    return bw, fw


def _set_union(left: Table, right: Table, config: CaptureConfig):
    ht: Dict[tuple, list] = {}
    for i, row in enumerate(_rows(left)):          # ∪ht: build phase
        entry = ht.get(row)
        if entry is None:
            entry = ht[row] = [[], []]
        entry[0].append(i)
    for i, row in enumerate(_rows(right)):         # ∪p: probe/append
        entry = ht.get(row)
        if entry is None:
            entry = ht[row] = [[], []]
        entry[1].append(i)
    out_rows = list(ht.keys())                     # ∪scan
    output = _emit(left, out_rows)
    if not config.enabled:
        return output, (None, None, None, None)
    a_fw = [NO_MATCH] * left.num_rows
    b_fw = [NO_MATCH] * right.num_rows
    for oid, (a_rids, b_rids) in enumerate(ht.values()):
        for r in a_rids:
            a_fw[r] = oid
        for r in b_rids:
            b_fw[r] = oid
    l_bw, l_fw = _locals_from_forward(a_fw, output.num_rows, config)
    r_bw, r_fw = _locals_from_forward(b_fw, output.num_rows, config)
    return output, (l_bw, l_fw, r_bw, r_fw)


def _bag_union(left: Table, right: Table, config: CaptureConfig):
    output = concat_tables(
        [left, right.rename(dict(zip(right.schema.names, left.schema.names, strict=True)))]
    )
    if not config.enabled:
        return output, (None, None, None, None)
    n_left, n_right = left.num_rows, right.num_rows
    l_bw = RidArray(
        np.concatenate([np.arange(n_left), np.full(n_right, NO_MATCH)]).astype(np.int64)
    ) if config.backward else None
    r_bw = RidArray(
        np.concatenate([np.full(n_left, NO_MATCH), np.arange(n_right)]).astype(np.int64)
    ) if config.backward else None
    l_fw = RidArray(np.arange(n_left, dtype=np.int64)) if config.forward else None
    r_fw = (
        RidArray(np.arange(n_right, dtype=np.int64) + n_left)
        if config.forward
        else None
    )
    return output, (l_bw, l_fw, r_bw, r_fw)


def _set_intersect(left: Table, right: Table, config: CaptureConfig):
    ht: Dict[tuple, list] = {}
    for i, row in enumerate(_rows(left)):          # ∩ht: build on A
        entry = ht.get(row)
        if entry is None:
            entry = ht[row] = [[], []]
        entry[0].append(i)
    for i, row in enumerate(_rows(right)):         # ∩p: probe only
        entry = ht.get(row)
        if entry is not None:
            entry[1].append(i)
    out_rows = [row for row, e in ht.items() if e[1]]   # ∩scan
    output = _emit(left, out_rows)
    if not config.enabled:
        return output, (None, None, None, None)
    a_fw = [NO_MATCH] * left.num_rows
    b_fw = [NO_MATCH] * right.num_rows
    oid = -1
    for a_rids, b_rids in ht.values():
        if not b_rids:
            continue
        oid += 1
        for r in a_rids:
            a_fw[r] = oid
        for r in b_rids:
            b_fw[r] = oid
    l_bw, l_fw = _locals_from_forward(a_fw, output.num_rows, config)
    r_bw, r_fw = _locals_from_forward(b_fw, output.num_rows, config)
    return output, (l_bw, l_fw, r_bw, r_fw)


def _bag_intersect(left: Table, right: Table, config: CaptureConfig):
    """Product-multiplicity bag intersection (Appendix F.4)."""
    ht: Dict[tuple, list] = {}
    for i, row in enumerate(_rows(left)):
        entry = ht.get(row)
        if entry is None:
            entry = ht[row] = [[], []]
        entry[0].append(i)
    for i, row in enumerate(_rows(right)):
        entry = ht.get(row)
        if entry is not None:
            entry[1].append(i)
    out_rows: List[tuple] = []
    out_a: List[int] = []
    out_b: List[int] = []
    for row, (a_rids, b_rids) in ht.items():
        for a in a_rids:                            # a-major pair order
            for b in b_rids:
                out_rows.append(row)
                out_a.append(a)
                out_b.append(b)
    output = _emit(left, out_rows)
    if not config.enabled:
        return output, (None, None, None, None)
    a_arr = RidArray(np.asarray(out_a, dtype=np.int64))
    b_arr = RidArray(np.asarray(out_b, dtype=np.int64))
    l_bw = a_arr if config.backward else None
    r_bw = b_arr if config.backward else None
    l_fw = invert_rid_array(a_arr, left.num_rows) if config.forward else None
    r_fw = invert_rid_array(b_arr, right.num_rows) if config.forward else None
    return output, (l_bw, l_fw, r_bw, r_fw)


def _set_except(left: Table, right: Table, config: CaptureConfig):
    ht: Dict[tuple, list] = {}
    for i, row in enumerate(_rows(left)):          # build with b_bit = 1
        entry = ht.get(row)
        if entry is None:
            entry = ht[row] = [[], True]
        entry[0].append(i)
    for row in _rows(right):                        # probe clears the bit
        entry = ht.get(row)
        if entry is not None:
            entry[1] = False
    out_rows = [row for row, e in ht.items() if e[1]]
    output = _emit(left, out_rows)
    if not config.enabled:
        return output, (None, None, None, None)
    a_fw = [NO_MATCH] * left.num_rows
    oid = -1
    for a_rids, survives in ht.values():
        if not survives:
            continue
        oid += 1
        for r in a_rids:
            a_fw[r] = oid
    l_bw, l_fw = _locals_from_forward(a_fw, output.num_rows, config)
    return output, (l_bw, l_fw, None, None)


def _bag_except(left: Table, right: Table, config: CaptureConfig):
    ht: Dict[tuple, list] = {}
    for i, row in enumerate(_rows(left)):
        entry = ht.get(row)
        if entry is None:
            entry = ht[row] = [[], 0]
        entry[0].append(i)
    for row in _rows(right):
        entry = ht.get(row)
        if entry is not None:
            entry[1] += 1
    out_rows: List[tuple] = []
    out_a: List[int] = []
    for row, (a_rids, b_count) in ht.items():
        for a in a_rids[: max(0, len(a_rids) - b_count)]:
            out_rows.append(row)
            out_a.append(a)
    output = _emit(left, out_rows)
    if not config.enabled:
        return output, (None, None, None, None)
    arr = RidArray(np.asarray(out_a, dtype=np.int64))
    l_bw = arr if config.backward else None
    l_fw = invert_rid_array(arr, left.num_rows) if config.forward else None
    return output, (l_bw, l_fw, None, None)
