"""Compiled (produce/consume code generation) reference backend."""

from .executor import CompiledExecutor

__all__ = ["CompiledExecutor"]
