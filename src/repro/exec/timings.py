"""Central registry of per-execution timing/counter keys.

Every key written into an :class:`~repro.exec.vector.executor.ExecResult`
``timings`` dict (or read back out by benchmarks and BENCH gates) must be
one of the constants below — enforced statically by lint rule **RPR003
timings-registry** (``python -m tools.lint src benchmarks``).

Why a registry at all: the late-materialization benchmarks gate on
counters like ``late_mat_chain_hops``; a typo'd key at either the write
or the read site does not error, it silently reports ``0``/``None`` and
the gate stops measuring anything.  Keeping every spelling in one module
turns that failure mode into a lint error.

Adding a key: declare the constant here, add it to :data:`ALL_KEYS`,
and use the constant at both write and read sites.
"""

from __future__ import annotations

#: Wall-clock seconds of one ``execute()`` call (both backends).
EXECUTE = "execute"

#: Number of lineage-consuming subtrees the planner handed to the pushed
#: (late-materializing) path during this execution.
LATE_MAT_SUBTREES = "late_mat_subtrees"

#: Joins executed inside pushed subtrees in the rid domain.
LATE_MAT_JOINS = "late_mat_joins"

#: DISTINCT operators absorbed into pushed subtrees.
LATE_MAT_DISTINCTS = "late_mat_distincts"

#: Join hops flattened into a single pushed rid-domain chain.
LATE_MAT_CHAIN_HOPS = "late_mat_chain_hops"

#: Chain hops whose build side was swapped by the cardinality rule.
LATE_MAT_BUILD_SWAPS = "late_mat_build_swaps"

#: Chain hops probed with the pk-fk fast path (build keys unique).
LATE_MAT_PKFK_DETECTED = "late_mat_pkfk_detected"

#: Morsel tasks dispatched to the shared worker pool during this
#: execution (0 / absent when the run was serial).  Folded once on the
#: coordinating thread after each kernel's merge — workers never touch
#: the timings dict (see CONTRIBUTING.md, "Parallel execution contract").
MORSEL_TASKS = "morsel_tasks"

#: Every registered timings key.  Tests assert BENCH-gated keys appear
#: here; the linter does not consult this set (it checks that *call
#: sites* reference ``timings.<CONSTANT>``), so a key missing from it is
#: caught at test time, not silently accepted.
ALL_KEYS = frozenset(
    {
        EXECUTE,
        LATE_MAT_SUBTREES,
        LATE_MAT_JOINS,
        LATE_MAT_DISTINCTS,
        LATE_MAT_CHAIN_HOPS,
        LATE_MAT_BUILD_SWAPS,
        LATE_MAT_PKFK_DETECTED,
        MORSEL_TASKS,
    }
)
