"""Morsel-driven parallel execution substrate (ROADMAP item 2).

The hot kernels — hop probes, rid gathers, group-by bincounts — are
single pure-numpy passes over position ranges, and numpy releases the
GIL inside them (fancy indexing, ``bincount``), so plain threads give
real parallelism with zero-copy shared arrays.  This module supplies the
three pieces every parallel kernel shares:

* a **partitioner**: :func:`morsel_ranges` splits ``n`` positions into
  fixed-size contiguous morsels (default ``64Ki`` rows, overridable via
  ``REPRO_MORSEL_SIZE`` for tests that need boundaries inside tiny
  tables);
* one **shared worker pool**, created lazily and grown on demand, so
  concurrent snapshot readers (``serve.py``) reuse threads instead of
  spawning a pool per query;
* **deterministic merges**: every helper returns results in morsel
  (i.e. input) order — :func:`gather` writes disjoint output slices,
  :func:`bincount` sums int64 partials (associative and exact) — so
  ``parallel=N`` output is bit-identical to serial for every ``N``.
  Float reductions are deliberately *not* offered: reordering float
  adds changes results, and the plan-equivalence harnesses assert
  bit-identity.

Counters fold on the coordinator only: workers never touch a timings
dict; the dispatching thread bumps a :class:`MorselCounter` after each
merge and the executor folds it into ``timings[MORSEL_TASKS]`` once.
The pool never runs nested work — only leaf kernels are dispatched, and
workers never submit or wait on further tasks — so it cannot deadlock
at any worker count.  See CONTRIBUTING.md, "Parallel execution
contract".
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import InvalidArgumentError

#: Rows per morsel.  64Ki int64 positions keep per-task numpy calls far
#: above dispatch overhead while still splitting fig14-scale tables into
#: enough morsels to occupy 4-8 workers.
DEFAULT_MORSEL_SIZE = 1 << 16


def morsel_size() -> int:
    """Rows per morsel; ``REPRO_MORSEL_SIZE`` overrides (tests set it to
    single digits so 30-row Hypothesis tables still split)."""
    raw = os.environ.get("REPRO_MORSEL_SIZE")
    if raw is None:
        return DEFAULT_MORSEL_SIZE
    try:
        size = int(raw)
    except ValueError as exc:
        raise InvalidArgumentError(f"REPRO_MORSEL_SIZE must be an int, got {raw!r}") from exc
    if size < 1:
        raise InvalidArgumentError(f"REPRO_MORSEL_SIZE must be >= 1, got {size}")
    return size


def resolve_parallel(value: Optional[int] = None) -> int:
    """Resolve a worker count: explicit value, else ``REPRO_PARALLEL``,
    else serial (1).  The env default is what lets CI run the whole
    tier-1 suite under ``REPRO_PARALLEL=4`` without touching call sites."""
    if value is None:
        raw = os.environ.get("REPRO_PARALLEL")
        if raw is None:
            return 1
        try:
            value = int(raw)
        except ValueError as exc:
            raise InvalidArgumentError(f"REPRO_PARALLEL must be an int, got {raw!r}") from exc
    if not isinstance(value, int) or isinstance(value, bool):
        raise InvalidArgumentError(f"parallel must be an int >= 1, got {value!r}")
    if value < 1:
        raise InvalidArgumentError(f"parallel must be >= 1, got {value}")
    return value


def morsel_ranges(n: int, size: Optional[int] = None) -> List[Tuple[int, int]]:
    """Contiguous ``(lo, hi)`` position ranges covering ``[0, n)``.

    Empty input yields no morsels (never a single empty range); the last
    morsel is short when ``size`` does not divide ``n``.
    """
    if size is None:
        size = morsel_size()
    if n <= 0:
        return []
    return [(lo, min(lo + size, n)) for lo in range(0, n, size)]


class MorselCounter:
    """Tasks dispatched to the pool, counted on the coordinating thread
    only (after the merge) — never incremented from a worker."""

    __slots__ = ("tasks",)

    def __init__(self) -> None:
        self.tasks = 0


_pool_lock = threading.Lock()
_pool: Optional[ThreadPoolExecutor] = None
_pool_workers = 0


def _shared_pool(workers: int) -> ThreadPoolExecutor:
    """The process-wide worker pool, grown (recreated) when a caller asks
    for more workers than it currently has.  Old pools retire after
    draining; shrink requests are ignored so concurrent readers never
    steal each other's threads."""
    global _pool, _pool_workers
    with _pool_lock:
        if _pool is None or workers > _pool_workers:
            old = _pool
            _pool = ThreadPoolExecutor(
                max_workers=workers, thread_name_prefix="repro-morsel"
            )
            _pool_workers = workers
            if old is not None:
                old.shutdown(wait=False)
        return _pool


def run_tasks(
    thunks: Sequence[Callable[[], object]],
    workers: int,
    counter: Optional[MorselCounter] = None,
) -> List[object]:
    """Run ``thunks`` and return their results in submission order — the
    deterministic-merge primitive every parallel kernel builds on.

    Serial (no pool, no futures) when ``workers <= 1`` or there is at
    most one thunk; a worker exception propagates to the coordinator.
    """
    if workers <= 1 or len(thunks) <= 1:
        return [thunk() for thunk in thunks]
    pool = _shared_pool(workers)
    futures = [pool.submit(thunk) for thunk in thunks]
    if counter is not None:
        counter.tasks += len(futures)
    return [future.result() for future in futures]


def gather(
    values: np.ndarray,
    indices: np.ndarray,
    workers: int = 1,
    counter: Optional[MorselCounter] = None,
) -> np.ndarray:
    """``values[indices]`` with the index array split into morsels.

    Workers write disjoint slices of one preallocated output, so the
    result is element-for-element identical to the serial gather (no
    reduction, no reordering) for any worker count and dtype — object
    columns included.
    """
    n = int(indices.shape[0])
    ranges = morsel_ranges(n) if workers > 1 else []
    if len(ranges) <= 1:
        return values[indices]
    out = np.empty(n, dtype=values.dtype)

    def task(lo: int, hi: int) -> None:
        out[lo:hi] = values[indices[lo:hi]]

    run_tasks([lambda lo=lo, hi=hi: task(lo, hi) for lo, hi in ranges], workers, counter)
    return out


def bincount(
    group_ids: np.ndarray,
    num_groups: int,
    workers: int = 1,
    counter: Optional[MorselCounter] = None,
) -> np.ndarray:
    """``np.bincount(group_ids, minlength=num_groups)`` via per-morsel
    int64 partial counts summed at the merge — integer addition is
    associative, so the result is exact and order-independent.

    Requires every id in ``[0, num_groups)`` (true for dense group ids
    by construction); ids beyond ``num_groups`` would give the morsel
    partials ragged lengths.
    """
    n = int(group_ids.shape[0])
    ranges = morsel_ranges(n) if workers > 1 else []
    if len(ranges) <= 1:
        return np.bincount(group_ids, minlength=num_groups)
    partials = run_tasks(
        [
            lambda lo=lo, hi=hi: np.bincount(group_ids[lo:hi], minlength=num_groups)
            for lo, hi in ranges
        ],
        workers,
        counter,
    )
    total = partials[0].astype(np.int64, copy=True)
    for part in partials[1:]:
        total += part
    return total
