"""Execution backends: vectorized (performance) and compiled (reference)."""
