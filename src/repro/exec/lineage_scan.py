"""Execution of :class:`~repro.plan.logical.LineageScan` leaves.

Both backends funnel through :func:`execute_lineage_scan`, so the SQL
constructs ``FROM Lb(result, 'relation')`` and ``FROM Lf('relation',
result)`` behave identically on the vector and compiled engines:

* The named prior result is resolved at *execution* time against the
  registry of :class:`~repro.api.QueryResult` objects held by
  :class:`~repro.api.Database` — re-registering a name re-targets every
  plan that references it.
* The traced rid subset comes from the optional third argument (an int
  literal or a ``:param`` bound through ``params``); omitted, every row is
  traced.
* The scan's own lineage is captured like any base-relation scan, so
  lineage-consuming queries are themselves lineage-traceable: ``Lb``
  output rows map to the traced base relation's rids, and ``Lf`` output
  rows map to the prior result's output (registered as a pseudo-relation
  under the result's name).

Late materialization
--------------------
:func:`execute_lineage_scan` is the *materializing* path: it copies the
traced subset (``source.take(rids)``, every column) into a fresh table
that the enclosing operators then scan.  When a ``Select`` / ``Project``
(bag or DISTINCT) / ``GroupBy`` tree sits on the scan — directly, or
through a hash join whose input(s) are ``Select*``-over-``LineageScan``
chains — both executors instead compile the tree to operate in the rid
domain — gathering only the columns the tree reads (join keys first,
payload at matched rids only) and filtering/deduplicating/aggregating
the gathered slices — via
:func:`repro.plan.rewrite.match_late_materialization` and
:func:`repro.exec.late_mat.execute_pushed`.  The rewrite's match and
fallback rules are documented in :mod:`repro.plan.rewrite`; shapes it
does not cover (bare scans, sorts, θ-joins/cross products, set
operations at the tree root) fall back to this module.  Both paths share
:func:`resolve_scan_source` (registry lookup, rid resolution, and every
schema-drift / shrink guard) and :func:`scan_node_lineage`, so output
rows and captured lineage are identical by construction; pass
``late_materialize=False`` to :meth:`repro.api.Database.execute` /
``sql`` to force the materializing path (the benchmarks' baseline).
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple

import numpy as np

from .. import sanitize
from ..errors import LineageError, PlanError, StaleBindingError
from ..expr.ast import Const, Param
from ..lineage.cache import LineageResolutionCache
from ..lineage.capture import CaptureConfig, QueryLineage
from ..lineage.composer import NodeLineage
from ..plan.logical import LineageScan
from ..storage.catalog import Catalog
from ..storage.table import Table


def resolve_base_table(catalog: Catalog, lineage: QueryLineage, relation: str) -> str:
    """The catalog table underlying a lineage-relation reference.

    ``Lb`` accepts the same three relation forms as lineage lookups — the
    base table name, a ``name#i`` occurrence key of a self-join, or a SQL
    alias — but its output rows always come from the underlying *catalog*
    table, which this resolves.  Unknown references raise the catalog's
    canonical unknown-table error.
    """
    known = set(catalog.names())
    candidates = {key.split("#")[0] for key in lineage.keys_for(relation)} & known
    if len(candidates) > 1:
        # E.g. "FROM a AS x JOIN t AS a": the reference denotes both the
        # base-table-a occurrence and the alias of the t occurrence.
        raise LineageError(
            f"lineage relation {relation!r} maps to multiple base tables "
            f"{sorted(candidates)}; use an occurrence key or a distinct alias"
        )
    if len(candidates) == 1:
        return next(iter(candidates))
    if relation in known:
        return relation
    if "#" in relation and relation.split("#")[0] in known:
        return relation.split("#")[0]
    catalog.get_versioned(relation)  # raises the canonical unknown-table error
    raise PlanError(f"cannot resolve lineage relation {relation!r}")


def resolve_rid_spec(rids_expr, params: Optional[dict], default_size: int) -> np.ndarray:
    """The traced rid subset of a lineage scan as an int64 array."""
    if rids_expr is None:
        return np.arange(default_size, dtype=np.int64)
    if isinstance(rids_expr, Param):
        if params is None or rids_expr.name not in params:
            raise PlanError(
                f"lineage scan references parameter :{rids_expr.name} "
                "but no value was bound; pass params={...}"
            )
        value = params[rids_expr.name]
    elif isinstance(rids_expr, Const):
        value = rids_expr.value
    else:
        raise PlanError(
            f"lineage scan rid subset must be a literal or parameter, "
            f"got {rids_expr!r}"
        )
    arr = np.asarray(value)
    if arr.size == 0:
        # An empty selection (interactive brush-clear) is valid; don't
        # trip the dtype guard on np.asarray([])'s float64 default.
        return np.empty(0, dtype=np.int64)
    if arr.dtype.kind not in "iu":
        # Silent float truncation would trace plausible-looking rows for
        # the wrong bar; demand integer positions.
        raise PlanError(
            f"lineage scan rid subset must be integers, got dtype {arr.dtype}"
        )
    arr = arr.astype(np.int64, copy=False)
    if arr.ndim == 0:
        arr = arr.reshape(1)
    if arr.ndim != 1:
        raise PlanError("lineage scan rid subset must be one-dimensional")
    return arr


def _resolve_result(plan: LineageScan, results: Optional[Mapping[str, object]]):
    if results is None or plan.result not in results:
        known = sorted(results) if results else []
        raise PlanError(
            f"unknown result {plan.result!r} in lineage scan; register the "
            f"prior query with Database.register_result (known: {known})"
        )
    result = results[plan.result]
    if result.lineage is None:
        raise PlanError(
            f"result {plan.result!r} was executed without lineage capture; "
            "re-run it with capture enabled to consume its lineage"
        )
    return result


def resolve_scan_source(
    plan: LineageScan,
    catalog: Catalog,
    results: Optional[Mapping[str, object]],
    params: Optional[dict],
    cache: Optional[LineageResolutionCache] = None,
) -> Tuple[Table, np.ndarray, str, int, Optional[int]]:
    """Resolve a lineage scan to ``(source table, traced rids, source
    name, source domain, source epoch)`` without materializing any rows.

    The source table is the traced base relation for backward scans and
    the prior result's output for forward scans; ``rids`` index into it.
    All registry-resolution and drift guards live here so the
    materializing path (:func:`execute_lineage_scan`) and the pushed path
    (:func:`repro.exec.late_mat.execute_pushed`) reject exactly the same
    states.  ``epoch`` is the traced base relation's catalog replacement
    epoch (``None`` for forward scans, whose source is a prior result).

    ``cache`` memoizes the (dominant) rid-resolution step per ``(result,
    relation, rid subset)`` — see
    :class:`~repro.lineage.cache.LineageResolutionCache`; prepared
    statements and sessions share one cache so a brush's N per-view
    statements resolve lineage once.  Cached rid arrays are read-only;
    both execution paths only gather through them.
    """
    result = _resolve_result(plan, results)
    lineage = result.lineage
    # The epoch governing cache validity must come from the registry this
    # execution reads (a live registry, or a pinned snapshot view) — a
    # shared cache deriving it from its own live registry would file a
    # snapshot's rids under the current epoch.  Plain-mapping fixtures
    # have no epochs; None lets the cache fall back to identity tokens.
    epoch_of = getattr(results, "epoch", None)
    registry_epoch = epoch_of(plan.result) if callable(epoch_of) else None

    if plan.direction == "backward":
        base_name = resolve_base_table(catalog, lineage, plan.relation)
        base, epoch = catalog.get_versioned(base_name)
        captured_epoch = lineage.base_epoch(plan.relation)
        if captured_epoch is not None and captured_epoch != epoch:
            # Same-shape replacement would otherwise answer with stale
            # rids against the new rows (shrink/schema drift is caught
            # below even without epochs).
            raise PlanError(
                f"base relation {base_name!r} was replaced since result "
                f"{plan.result!r} captured its lineage (epoch "
                f"{captured_epoch} vs {epoch}); re-run the base query"
            )
        if plan.schema is not None and base.schema != plan.schema:
            # Re-registration may re-resolve the relation reference to a
            # different base table (or the table may have been replaced);
            # reading it against the bound schema would corrupt operators
            # above this scan.
            raise StaleBindingError(
                f"relation {plan.relation!r} of result {plan.result!r} now "
                f"resolves to schema {base.schema!r}, but the plan was "
                f"bound against {plan.schema!r}; re-parse the statement"
            )
        if plan.rids is None:
            out_rids = None  # trace every output row
            subset_key = LineageResolutionCache.subset_key(None)
        else:
            out_rids = resolve_rid_spec(plan.rids, params, result.table.num_rows)
            subset_key = LineageResolutionCache.subset_key(out_rids)

        def compute_backward() -> np.ndarray:
            probe = (
                np.arange(result.table.num_rows, dtype=np.int64)
                if out_rids is None
                else out_rids
            )
            return lineage.backward(probe, plan.relation)

        if cache is not None:
            rids = cache.resolve(
                plan.result, result, "backward", plan.relation,
                subset_key, compute_backward, epoch=registry_epoch,
            )
        else:
            rids = compute_backward()
        if rids.size and int(rids[-1]) >= base.num_rows:
            # rids are sorted; a captured rid beyond the current table
            # means the base relation shrank since capture.
            raise PlanError(
                f"result {plan.result!r} holds lineage rids beyond "
                f"relation {base_name!r} ({base.num_rows} rows); the base "
                "table was replaced — re-run the base query"
            )
        if sanitize.enabled():
            # Every resolved rid in-domain and the capture epoch live —
            # the production guards above only check the tail/recorded
            # epoch; debug mode re-validates the whole resolution.
            sanitize.check_rid_bounds(
                rids, base.num_rows, f"Lb({plan.result!r}, {base_name!r})"
            )
            sanitize.check_epoch(
                captured_epoch, epoch, base_name, f"Lb({plan.result!r})"
            )
        # Register under the resolved base table (like an aliased Scan),
        # so downstream lookups and pruning by base name keep working even
        # when the Lb argument was an alias or occurrence key.
        return base, rids, base_name, base.num_rows, epoch

    if plan.schema is not None and result.table.schema != plan.schema:
        # The binder froze the prior result's schema into the plan;
        # silently reading shifted columns would corrupt any operator
        # bound above this scan.
        raise StaleBindingError(
            f"result {plan.result!r} was re-registered with a "
            f"different schema ({result.table.schema!r} vs bound "
            f"{plan.schema!r}); re-parse the statement"
        )
    if plan.rids is None:
        in_rids = None
        subset_key = LineageResolutionCache.subset_key(None)
    else:
        in_rids = resolve_rid_spec(plan.rids, params, 0)
        subset_key = LineageResolutionCache.subset_key(in_rids)

    def compute_forward() -> np.ndarray:
        probe = (
            np.arange(lineage.forward_index(plan.relation).num_keys, dtype=np.int64)
            if in_rids is None
            else in_rids
        )
        return lineage.forward(plan.relation, probe)

    if cache is not None:
        rids = cache.resolve(
            plan.result, result, "forward", plan.relation,
            subset_key, compute_forward, epoch=registry_epoch,
        )
    else:
        rids = compute_forward()
    if sanitize.enabled():
        sanitize.check_rid_bounds(
            rids, result.table.num_rows, f"Lf({plan.relation!r}, {plan.result!r})"
        )
    # The prior result's output acts as the scanned (pseudo) relation.
    return result.table, rids, plan.result, result.table.num_rows, None


def _registry_epoch(results, name: str) -> Optional[int]:
    """The registry replacement epoch governing cache validity for
    ``name`` — see the comment in :func:`resolve_scan_source`."""
    epoch_of = getattr(results, "epoch", None)
    return epoch_of(name) if callable(epoch_of) else None


def _check_backward_batch(
    plan: LineageScan,
    catalog: Catalog,
    results: Optional[Mapping[str, object]],
):
    """Shared prologue of the batched backward resolvers: registry
    lookup plus every epoch / schema-drift guard of the per-binding
    path.  Returns ``(result, lineage, base, base_name, epoch,
    captured_epoch)``."""
    if plan.direction != "backward":
        raise PlanError("batched lineage resolution supports backward scans only")
    result = _resolve_result(plan, results)
    lineage = result.lineage
    base_name = resolve_base_table(catalog, lineage, plan.relation)
    base, epoch = catalog.get_versioned(base_name)
    captured_epoch = lineage.base_epoch(plan.relation)
    if captured_epoch is not None and captured_epoch != epoch:
        raise PlanError(
            f"base relation {base_name!r} was replaced since result "
            f"{plan.result!r} captured its lineage (epoch "
            f"{captured_epoch} vs {epoch}); re-run the base query"
        )
    if plan.schema is not None and base.schema != plan.schema:
        raise StaleBindingError(
            f"relation {plan.relation!r} of result {plan.result!r} now "
            f"resolves to schema {base.schema!r}, but the plan was "
            f"bound against {plan.schema!r}; re-parse the statement"
        )
    return result, lineage, base, base_name, epoch, captured_epoch


def resolve_scan_sources_batch(
    plan: LineageScan,
    catalog: Catalog,
    results: Optional[Mapping[str, object]],
    params_list,
    cache: Optional[LineageResolutionCache] = None,
) -> Tuple[Table, list, str, int, Optional[int]]:
    """Batched :func:`resolve_scan_source` for N parameter bindings of one
    *backward* lineage scan — the multi-brush serving shape, where N
    concurrent users' statements differ only in the rid subset bound to
    the scan's parameter.

    Every guard of the per-binding path applies (registry lookup, epoch
    and schema drift, shrink, sanitizer bounds), but the index
    materialization and dedup scratch are shared through **one**
    :meth:`~repro.lineage.capture.QueryLineage.backward_batch` CSR pass
    instead of N independent ``backward`` calls.  The resolution
    ``cache`` is consulted per binding first (``peek``), only the misses
    go through the coalesced CSR pass, and the computed sets are stored
    back — so a steady-state brush workload pays the same zero
    resolutions the per-binding path would, while a cold batch pays one
    pass instead of N.

    Returns ``(source, [rids...], source_name, domain, epoch)`` with one
    sorted-distinct rid array per binding, each bit-identical to what
    :func:`resolve_scan_source` computes for that binding alone.
    """
    result, lineage, base, base_name, epoch, captured_epoch = (
        _check_backward_batch(plan, catalog, results)
    )
    probes = [
        resolve_rid_spec(plan.rids, params, result.table.num_rows)
        for params in params_list
    ]
    rid_sets: list = [None] * len(probes)
    if cache is not None:
        registry_epoch = _registry_epoch(results, plan.result)
        keys = [LineageResolutionCache.subset_key(p) for p in probes]
        miss_idx = []
        for i, key in enumerate(keys):
            got = cache.peek(
                plan.result, result, "backward", plan.relation, key,
                epoch=registry_epoch,
            )
            if got is None:
                miss_idx.append(i)
            else:
                rid_sets[i] = got
        if miss_idx:
            computed = lineage.backward_batch(
                [probes[i] for i in miss_idx], plan.relation
            )
            for i, rids in zip(miss_idx, computed):
                rid_sets[i] = cache.store(
                    plan.result, result, "backward", plan.relation,
                    keys[i], rids, epoch=registry_epoch,
                )
    else:
        rid_sets = lineage.backward_batch(probes, plan.relation)
    for rids in rid_sets:
        if rids.size and int(rids[-1]) >= base.num_rows:
            raise PlanError(
                f"result {plan.result!r} holds lineage rids beyond "
                f"relation {base_name!r} ({base.num_rows} rows); the base "
                "table was replaced — re-run the base query"
            )
        if sanitize.enabled():
            sanitize.check_rid_bounds(
                rids, base.num_rows, f"Lb({plan.result!r}, {base_name!r})"
            )
    if sanitize.enabled():
        sanitize.check_epoch(
            captured_epoch, epoch, base_name, f"Lb({plan.result!r})"
        )
    return base, rid_sets, base_name, base.num_rows, epoch


#: Above this many distinct bars the per-bar decomposition stops paying
#: (per-bar vectors grow with the bar count while the set-based path's
#: cost does not); fall back to set-based resolution.
_BAR_DECOMPOSE_MAX_BARS = 4096


def resolve_scan_bars_batch(
    plan: LineageScan,
    catalog: Catalog,
    results: Optional[Mapping[str, object]],
    params_list,
    cache: Optional[LineageResolutionCache] = None,
):
    """Per-bar decomposition of :func:`resolve_scan_sources_batch`.

    When the scan's backward index is a *partition* (every base rid in at
    most one output bucket — the GROUP BY crossfilter-view shape,
    detected via :meth:`~repro.lineage.indexes.RidIndex.is_partitioned`),
    each binding's backward set is the **disjoint union** of per-bar
    buckets.  Resolving per distinct bar instead of per binding means:

    * overlapping brushes resolve each shared bar once, not once per
      user, and the ``cache`` memoizes *per-bar* sets — reusable across
      any combination of future brushes over the same view;
    * downstream, per-bar aggregates can be computed over segments whose
      total size is the **union** mass (each base row appears in exactly
      one segment), and per-binding answers reduce to tiny
      ``num_codes``-sized vector sums — see
      :func:`repro.exec.late_mat.execute_pushed_batch`.

    Returns ``None`` when the decomposition does not apply (non-partition
    index, or more than :data:`_BAR_DECOMPOSE_MAX_BARS` distinct bars) —
    callers fall back to set-based resolution.  Otherwise returns
    ``(source, probes, bar_ids, bar_sets, source_name, domain, epoch)``
    where ``probes[i]`` is binding ``i``'s sorted-deduped bar probe,
    ``bar_ids`` the sorted distinct bars across all bindings, and
    ``bar_sets[j]`` the sorted backward rid set of ``bar_ids[j]``.  All
    guards of the per-binding path apply (epoch / schema drift, shrink,
    sanitizer bounds).
    """
    result, lineage, base, base_name, epoch, captured_epoch = (
        _check_backward_batch(plan, catalog, results)
    )
    index = lineage.backward_index(plan.relation)
    partitioned = getattr(index, "is_partitioned", None)
    if partitioned is None or not partitioned():
        return None
    probes = [
        np.unique(resolve_rid_spec(plan.rids, params, result.table.num_rows))
        for params in params_list
    ]
    bar_ids = (
        np.unique(np.concatenate(probes)) if probes
        else np.empty(0, dtype=np.int64)
    )
    n_bars = int(bar_ids.shape[0])
    if n_bars > _BAR_DECOMPOSE_MAX_BARS:
        return None
    bar_sets: list = [None] * n_bars
    bar_probes = [bar_ids[j : j + 1] for j in range(n_bars)]
    if cache is not None:
        registry_epoch = _registry_epoch(results, plan.result)
        # Single-bar subset keys: identical to what a one-bar brush
        # through the per-binding path would file, so both populations
        # share entries.
        keys = [LineageResolutionCache.subset_key(p) for p in bar_probes]
        miss_idx = []
        for j, key in enumerate(keys):
            got = cache.peek(
                plan.result, result, "backward", plan.relation, key,
                epoch=registry_epoch,
            )
            if got is None:
                miss_idx.append(j)
            else:
                bar_sets[j] = got
        if miss_idx:
            computed = lineage.backward_batch(
                [bar_probes[j] for j in miss_idx], plan.relation
            )
            for j, rids in zip(miss_idx, computed):
                bar_sets[j] = cache.store(
                    plan.result, result, "backward", plan.relation,
                    keys[j], rids, epoch=registry_epoch,
                )
    else:
        bar_sets = lineage.backward_batch(bar_probes, plan.relation)
    for rids in bar_sets:
        if rids.size and int(rids[-1]) >= base.num_rows:
            raise PlanError(
                f"result {plan.result!r} holds lineage rids beyond "
                f"relation {base_name!r} ({base.num_rows} rows); the base "
                "table was replaced — re-run the base query"
            )
        if sanitize.enabled():
            sanitize.check_rid_bounds(
                rids, base.num_rows, f"Lb({plan.result!r}, {base_name!r})"
            )
    if sanitize.enabled():
        sanitize.check_epoch(
            captured_epoch, epoch, base_name, f"Lb({plan.result!r})"
        )
    return base, probes, bar_ids, bar_sets, base_name, base.num_rows, epoch


def scan_node_lineage(
    plan: LineageScan,
    key: str,
    rids: np.ndarray,
    source_name: str,
    domain: int,
    config: CaptureConfig,
    epoch: Optional[int] = None,
) -> NodeLineage:
    """The scan's node lineage: output row ``i`` came from source rid
    ``rids[i]``.  Shared by both materialization paths, so the pushed
    path composes from the same indexes the materializing path builds.
    Construction lives in the composer fold
    (:meth:`~repro.lineage.composer.NodeLineage.for_traced_scan`)."""
    return NodeLineage.for_traced_scan(
        key, source_name, rids, domain, config, alias=plan.alias, epoch=epoch
    )


def execute_lineage_scan(
    plan: LineageScan,
    key: str,
    catalog: Catalog,
    results: Optional[Mapping[str, object]],
    config: CaptureConfig,
    params: Optional[dict],
    cache: Optional[LineageResolutionCache] = None,
) -> Tuple[Table, NodeLineage]:
    """Materialize a lineage scan's output table and its node lineage."""
    source, rids, source_name, domain, epoch = resolve_scan_source(
        plan, catalog, results, params, cache
    )
    table = source.take(rids)
    node = scan_node_lineage(plan, key, rids, source_name, domain, config, epoch)
    return table, node
