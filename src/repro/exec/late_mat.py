"""Late-materializing execution of lineage-scan trees (rid domain).

Runs a :class:`~repro.plan.rewrite.PushedLineageQuery` — a
``[Project?][GroupBy?][Select*]`` tree over one
:class:`~repro.plan.logical.LineageScan` or over a flattened **chain**
(or snowflake tree) of hash equi-joins with lineage-backed leaves —
without ever materializing the traced subset *or any intermediate join
output*:

1. resolve the traced rid array(s) against the result registry
   (:func:`repro.exec.lineage_scan.resolve_scan_source`, so every
   schema-drift and shrink guard of the materializing path applies);
2. evaluate pushed predicates on rid-gathered slices of **only the
   predicates' columns**, narrowing the rid arrays to survivors;
3. for a join core, probe the chain hop by hop: each hop gathers **only
   its join keys** through the per-leaf position arrays accumulated so
   far (:func:`~repro.exec.vector.join.compute_matches_oriented`),
   picks its hash-build side from cardinality statistics
   (:func:`~repro.substrate.stats.choose_build_side` — the pk-fk fast
   probe when one side's keys are known unique, e.g. a lineage scan
   over a dimension table), and composes the match arrays into the
   position arrays — a join output row is represented as one position
   per leaf, never as materialized payload;
4. gather the columns the output actually needs — group keys and
   aggregate arguments, projection inputs, or (predicate-only trees)
   the full core schema — at the *final surviving* positions only, and
   feed the aggregation / DISTINCT kernels that narrow slice table
   (:func:`~repro.exec.vector.groupby.execute_groupby` /
   :func:`~repro.exec.vector.groupby.execute_distinct`).

Both backends funnel through :func:`execute_pushed` — exactly like
:func:`~repro.exec.lineage_scan.execute_lineage_scan` — so the pushed
path is backend-agnostic by construction.  ``run_child`` hands plain
(non-lineage) chain leaves back to the calling backend's own recursion
(so e.g. a derived-table join input executes — and possibly pushes —
exactly as it would outside the rewrite), and ``next_key`` consumes the
backend's pre-order occurrence keys, one per lineage leaf.

Output rows *and* captured lineage are bit-identical to the
materializing path: composing the scan's rid-array lineage with a
selection's local rid array *is* the filtered rid array, so
:func:`~repro.exec.lineage_scan.scan_node_lineage` over the surviving
rids equals the materialized path's ``compose_node(select, scan)``;
every chain hop composes its (canonical-order) match arrays through the
same :func:`~repro.exec.vector.join.join_lineage_locals` /
:func:`~repro.lineage.composer.merge_binary` calls the vector executor
makes — a swapped build side re-sorts its matches back into canonical
probe order first — and aggregation / DISTINCT stages compose through
the same :func:`~repro.lineage.composer.compose_node`.  The property
suites (``tests/property/test_prop_late_mat.py``,
``tests/property/test_prop_late_mat_join.py``,
``tests/property/test_prop_late_mat_chain.py``) assert this equivalence
over random trees and chains on both backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import SchemaError
from ..lineage.cache import LineageResolutionCache
from ..lineage.capture import CaptureConfig
from ..lineage.composer import (
    NodeLineage,
    compose_node,
    merge_binary,
    selection_locals,
)
from ..plan.logical import LogicalPlan, Scan, Select
from ..plan.rewrite import PushedJoin, PushedJoinHop, PushedJoinSide, PushedLineageQuery
from ..plan.schema import infer_expr_type, infer_schema, join_output_fields
from ..storage.catalog import Catalog
from ..storage.table import ColumnType, Schema, Table
from ..substrate.stats import (
    UNIQUENESS_PROBE_MAX_ROWS,
    JoinSideStats,
    choose_build_side,
)
from .lineage_scan import resolve_scan_source, scan_node_lineage
from .timings import (
    LATE_MAT_BUILD_SWAPS,
    LATE_MAT_CHAIN_HOPS,
    LATE_MAT_PKFK_DETECTED,
)

#: Executes one plan subtree through the calling backend's own recursion
#: (used for the plain, non-lineage leaves of a pushed join chain).
RunChild = Callable[[LogicalPlan], Tuple[Table, NodeLineage]]


@dataclass
class PushedStats:
    """Runtime decisions of one execution's pushed cores, surfaced by the
    executors as ``timings`` counters so tests and benchmarks can assert
    *what* ran (chain flattening, build-side swaps, detected pk-fk
    probes) without timing anything."""

    chain_hops: int = 0  # joins flattened beyond the first, per core
    build_swaps: int = 0  # hops that built on the plan-right side
    pkfk_detected: int = 0  # hops upgraded to the pk-fk probe by stats


def fold_push_stats(timings: Dict[str, float], stats: PushedStats) -> None:
    """Surface a run's pushed-chain decisions as ``timings`` counters
    (both backends call this): ``late_mat_chain_hops`` counts joins
    flattened beyond each core's first (PR 4 materialized at those
    hops), ``late_mat_build_swaps`` hops that built on the plan-right
    side, and ``late_mat_pkfk_detected`` hops upgraded to the pk-fk
    probe by column statistics alone."""
    if stats.chain_hops:
        timings[LATE_MAT_CHAIN_HOPS] = float(stats.chain_hops)
    if stats.build_swaps:
        timings[LATE_MAT_BUILD_SWAPS] = float(stats.build_swaps)
    if stats.pkfk_detected:
        timings[LATE_MAT_PKFK_DETECTED] = float(stats.pkfk_detected)


def _slice_names(source: Table, columns) -> List[str]:
    """The source columns to gather, in schema order (deterministic
    narrow schema), or one cheap stand-in column when the stage reads
    none (``SELECT COUNT(*)``, constant predicates) — a zero-column
    :class:`Table` cannot carry a row count."""
    names = [n for n in source.schema.names if n in columns]
    missing = sorted(set(columns) - set(source.schema.names))
    if missing:
        # Same canonical unknown-column error the materializing path's
        # operators would raise when evaluating over the full subset.
        source.column(missing[0])
    if names:
        return names
    for name, ctype in source.schema.fields:
        if ctype is not ColumnType.STR:
            return [name]
    return source.schema.names[:1]


def _gather(source: Table, rids: np.ndarray, names: Sequence[str]) -> Table:
    """Narrow gather: one fancy-index per listed column, nothing else."""
    return Table(
        {n: source.column(n)[rids] for n in names},
        Schema([(n, source.schema.type_of(n)) for n in names]),
    )


class _JoinInput:
    """One resolved leaf of a pushed join chain: either a lineage leaf
    held as ``(source, rids)`` — rows are *never* materialized here,
    payload columns are gathered through ``rids`` at chain-surviving
    positions only — or a plain leaf already executed to a table.

    ``base_table`` names the catalog relation the leaf's row *positions*
    index into (the traced base table of a backward scan, or the scanned
    table of a plain ``[Select*] Scan`` leaf); the chain executor uses it
    to consult column statistics for build-side and pk-fk decisions.
    ``None`` means no base-table statistics apply (forward scans, derived
    tables, nested plans).
    """

    __slots__ = ("source", "rids", "table", "node", "base_table")

    def __init__(self, source=None, rids=None, table=None, node=None, base_table=None):
        self.source = source
        self.rids = rids
        self.table = table
        self.node = node
        self.base_table = base_table

    @property
    def schema(self) -> Schema:
        # The *full* leaf schema: join-output renaming must see every
        # column, exactly as the materializing path's subset table would.
        return (self.source if self.table is None else self.table).schema

    @property
    def num_rows(self) -> int:
        if self.table is not None:
            return self.table.num_rows
        return int(self.rids.shape[0])


class _ChainState:
    """A (partially joined) chain node held in the position domain.

    Rather than materializing a join output, the chain executor carries
    one position array per underlying leaf: output row ``i`` of this
    node is the combination of ``positions[k][i]`` for every leaf ``k``
    (``None`` = identity, a leaf not yet joined or filtered).  Columns
    are gathered through these arrays on demand — join keys per hop,
    predicate slices per pushed ``Select``, payload only once at the
    chain root — so unmatched rows never surface any payload and
    intermediate hops move nothing but ``int64`` positions.
    """

    __slots__ = ("inputs", "positions", "num_rows", "schema", "origins", "node", "_index")

    def __init__(
        self,
        inputs: List[_JoinInput],
        positions: List[Optional[np.ndarray]],
        num_rows: int,
        schema: Schema,
        origins: List[Tuple[int, str]],
        node: NodeLineage,
    ):
        self.inputs = inputs
        self.positions = positions
        self.num_rows = num_rows
        self.schema = schema
        self.origins = origins  # per output column: (leaf index, leaf column)
        self.node = node
        self._index: Dict[str, int] = {n: i for i, n in enumerate(schema.names)}

    @classmethod
    def for_leaf(cls, leaf: _JoinInput) -> "_ChainState":
        schema = leaf.schema
        return cls(
            [leaf],
            [None],
            leaf.num_rows,
            schema,
            [(0, name) for name in schema.names],
            leaf.node,
        )

    def column_values(self, name: str) -> np.ndarray:
        """One output column of this chain node, gathered through the
        leaf's position array (never more rows than currently survive)."""
        idx = self._index.get(name)
        if idx is None:
            # Canonical unknown-column error, as the materializing path's
            # operators raise over the full join output.
            raise SchemaError(
                f"unknown column {name!r}; available: {self.schema.names}"
            )
        leaf_idx, src = self.origins[idx]
        leaf = self.inputs[leaf_idx]
        pos = self.positions[leaf_idx]
        if leaf.table is not None:
            values = leaf.table.column(src)
            return values if pos is None else values[pos]
        base = leaf.source.column(src)
        return base[leaf.rids if pos is None else leaf.rids[pos]]

    def key_stats(self, keys: Sequence[str], catalog: Catalog) -> JoinSideStats:
        """Cardinality + key-uniqueness statistics for this node as one
        join input.  Uniqueness is only derivable for single-leaf nodes
        (joins may fan rows out) whose positions are subsets of a catalog
        base table: a unique base column stays unique under any subset
        gather, which covers the ``Lb``-over-dimension-table fast path.
        """
        unique: Optional[bool] = None
        if len(self.inputs) == 1 and self.inputs[0].base_table is not None:
            base = self.inputs[0].base_table
            base_rows = catalog.get_versioned(base)[0].num_rows
            if base_rows <= UNIQUENESS_PROBE_MAX_ROWS:
                # Deriving uniqueness scans the base column once per
                # epoch; keep that cold hit out of interactive statements
                # over huge relations (cardinality still decides there).
                for key in keys:
                    idx = self._index.get(key)
                    if idx is None:
                        continue  # the probe will raise the canonical error
                    stats = catalog.column_stats(base, self.origins[idx][1])
                    if stats.is_unique:
                        unique = True
                        break
        return JoinSideStats(rows=self.num_rows, keys_unique=unique)

    def narrow(self, kept: np.ndarray, node: NodeLineage) -> "_ChainState":
        """Keep only the listed output rows (a pushed ``Select``)."""
        return _ChainState(
            self.inputs,
            [kept if p is None else p[kept] for p in self.positions],
            int(kept.shape[0]),
            self.schema,
            self.origins,
            node,
        )


def _plain_base_table(plan: LogicalPlan) -> Optional[str]:
    """The catalog table behind a plain ``[Select*] Scan`` leaf (filters
    preserve column uniqueness), else ``None``."""
    while isinstance(plan, Select):
        plan = plan.child
    return plan.table if isinstance(plan, Scan) else None


class _ChainContext:
    """Execution-scoped handles threaded through the chain recursion."""

    __slots__ = (
        "catalog", "results", "config", "params",
        "next_key", "run_child", "cache", "stats",
    )

    def __init__(self, catalog, results, config, params, next_key, run_child, cache, stats):
        self.catalog = catalog
        self.results = results
        self.config = config
        self.params = params
        self.next_key = next_key
        self.run_child = run_child
        self.cache = cache
        self.stats = stats


def _resolve_scan_side(
    side: PushedJoinSide,
    key: str,
    catalog: Catalog,
    results: Optional[Mapping[str, object]],
    config: CaptureConfig,
    params: Optional[dict],
    cache: Optional[LineageResolutionCache],
) -> _JoinInput:
    """Resolve a lineage-backed chain leaf to ``(source, surviving rids)``
    plus its node lineage, filtering in the rid domain (identical to the
    linear pushed path's scan+Select handling)."""
    from ..expr.ast import evaluate

    source, rids, source_name, domain, epoch = resolve_scan_source(
        side.scan, catalog, results, params, cache
    )
    if side.predicate is not None:
        pred_table = _gather(
            source, rids, _slice_names(source, side.predicate.columns())
        )
        mask = np.asarray(
            evaluate(side.predicate, pred_table, params), dtype=bool
        )
        rids = rids[mask]
    node = scan_node_lineage(
        side.scan, key, rids, source_name, domain, config, epoch
    )
    return _JoinInput(
        source=source,
        rids=rids,
        node=node,
        # Positions of a backward scan index the traced base relation, so
        # that relation's column statistics transfer to the gathered keys.
        base_table=source_name if side.scan.direction == "backward" else None,
    )


def _chain_select(
    state: _ChainState,
    predicate,
    config: CaptureConfig,
    params: Optional[dict],
) -> _ChainState:
    """A pushed ``Select`` over a chain node, in the position domain:
    gather only the predicate's columns, narrow every leaf's positions to
    the passing rows, and compose the same 1-to-1 selection locals the
    materializing path's :func:`~repro.exec.vector.select.execute_select`
    builds."""
    from ..expr.ast import evaluate

    referenced = predicate.columns()
    names = [n for n in state.schema.names if n in referenced]
    missing = sorted(set(referenced) - set(state.schema.names))
    if missing:
        raise SchemaError(
            f"unknown column {missing[0]!r}; available: {state.schema.names}"
        )
    if not names:
        # Constant predicate: one cheap stand-in column carries the rows.
        names = _slice_names(_StandInSchema(state.schema), referenced)
    pred_table = Table(
        {n: state.column_values(n) for n in names},
        Schema([(n, state.schema.type_of(n)) for n in names]),
    )
    mask = np.asarray(evaluate(predicate, pred_table, params), dtype=bool)
    kept = np.nonzero(mask)[0].astype(np.int64)
    local_bw, local_fw = selection_locals(kept, mask.shape[0], config)
    node = compose_node(int(kept.shape[0]), state.node, local_bw, local_fw)
    return state.narrow(kept, node)


class _StandInSchema:
    """Adapter exposing a chain node's schema to :func:`_slice_names`
    (which only reads ``.schema`` and raises through ``.column``)."""

    __slots__ = ("schema",)

    def __init__(self, schema: Schema):
        self.schema = schema

    def column(self, name: str):
        raise SchemaError(
            f"unknown column {name!r}; available: {self.schema.names}"
        )


def _run_hop(hop: PushedJoinHop, ctx: _ChainContext) -> _ChainState:
    """Execute one chain hop (leaf or join) to a position-domain node."""
    if isinstance(hop, PushedJoin):
        left = _run_hop(hop.left, ctx)
        right = _run_hop(hop.right, ctx)
        state = _join_states(hop, left, right, ctx)
        if hop.predicate is not None:
            state = _chain_select(state, hop.predicate, ctx.config, ctx.params)
        return state
    if hop.scan is not None:
        leaf = _resolve_scan_side(
            hop, ctx.next_key(), ctx.catalog, ctx.results,
            ctx.config, ctx.params, ctx.cache,
        )
    else:
        table, node = ctx.run_child(hop.plan)
        leaf = _JoinInput(
            table=table, node=node, base_table=_plain_base_table(hop.plan)
        )
    return _ChainState.for_leaf(leaf)


def _join_states(
    hop: PushedJoin, left: _ChainState, right: _ChainState, ctx: _ChainContext
) -> _ChainState:
    """One hash-join hop over two chain nodes: narrow key probe with a
    stats-chosen build side, position composition, and the same
    local-lineage merge the vector executor performs."""
    from .vector.join import compute_matches_oriented, join_lineage_locals

    join = hop.join
    left_keys = [left.column_values(k) for k in join.left_keys]
    right_keys = [right.column_values(k) for k in join.right_keys]
    decision = choose_build_side(
        left.key_stats(join.left_keys, ctx.catalog),
        right.key_stats(join.right_keys, ctx.catalog),
        join.pkfk,
    )
    if ctx.stats is not None:
        if decision.swapped:
            ctx.stats.build_swaps += 1
        if decision.pkfk and not join.pkfk:
            ctx.stats.pkfk_detected += 1
    matches = compute_matches_oriented(
        left_keys, right_keys, decision.build_left, decision.pkfk
    )

    fields = join_output_fields(left.schema, right.schema)
    n_left_cols = len(left.schema.names)
    origins: List[Tuple[int, str]] = []
    for i in range(len(fields)):
        if i < n_left_cols:
            origins.append(left.origins[i])
        else:
            leaf_idx, src = right.origins[i - n_left_cols]
            origins.append((leaf_idx + len(left.inputs), src))
    positions = [
        matches.out_left if p is None else p[matches.out_left]
        for p in left.positions
    ] + [
        matches.out_right if p is None else p[matches.out_right]
        for p in right.positions
    ]

    # Lineage composes per hop exactly as the materializing executors do
    # (canonical-order matches, plan-level pkfk flag), so a chain's
    # captured lineage is the same merge_binary fold the fallback builds.
    l_bw, l_fw, r_bw, r_fw = join_lineage_locals(matches, ctx.config, join.pkfk)
    node = merge_binary(
        matches.num_out, left.node, right.node, l_bw, l_fw, r_bw, r_fw
    )
    return _ChainState(
        left.inputs + right.inputs,
        positions,
        matches.num_out,
        Schema([(n, t) for n, t, _ in fields]),
        origins,
        node,
    )


def _gather_chain_output(state: _ChainState, columns) -> Table:
    """Materialize the chain's narrow output table: only the referenced
    columns (or, for ``columns=None``, the full core schema), gathered at
    the final surviving positions only — the late gather."""
    needed = None if columns is None else set(columns)
    names = state.schema.names
    if needed is not None:
        missing = sorted(needed - set(names))
        if missing:
            # Same canonical error the materializing path raises when an
            # operator evaluates the name over the full join output.
            raise SchemaError(
                f"unknown column {missing[0]!r}; available: {names}"
            )
    keep = [n for n in names if needed is None or n in needed]
    if not keep:
        # Nothing referenced (SELECT COUNT(*) over a chain): one cheap
        # stand-in column carries the row count.
        keep = [
            next(
                (n for n, t in state.schema.fields if t is not ColumnType.STR),
                names[0],
            )
        ]
    return Table(
        {n: state.column_values(n) for n in keep},
        Schema([(n, state.schema.type_of(n)) for n in keep]),
    )


def execute_pushed(
    pushed: PushedLineageQuery,
    catalog: Catalog,
    results: Optional[Mapping[str, object]],
    config: CaptureConfig,
    params: Optional[dict],
    next_key: Callable[[], str],
    run_child: RunChild,
    cache: Optional[LineageResolutionCache] = None,
    stats: Optional[PushedStats] = None,
) -> Tuple[Table, NodeLineage]:
    """Execute a pushed tree; returns ``(output table, node lineage)``.

    ``next_key`` yields the backend's pre-order occurrence keys (one per
    lineage-scan leaf); ``run_child`` executes a plain chain leaf through
    the backend's own recursion; ``stats`` (when provided) accumulates
    the run's chain-hop / build-side / pk-fk decisions for the executors'
    ``timings`` counters.
    """
    from ..expr.ast import evaluate
    from .vector.groupby import execute_distinct, execute_groupby

    if pushed.join is not None:
        if stats is not None:
            stats.chain_hops += pushed.chain_hops
        ctx = _ChainContext(
            catalog, results, config, params, next_key, run_child, cache, stats
        )
        state = _run_hop(pushed.join, ctx)
        if pushed.predicate is not None:
            # The residual WHERE binds above the chain; evaluate it in
            # the position domain (only its columns gathered, standard
            # selection lineage) so the late gather below sees only the
            # final survivors.
            state = _chain_select(state, pushed.predicate, config, params)
        table = _gather_chain_output(state, pushed.columns)
        node = state.node
        if pushed.groupby is None and pushed.project is None:
            return table, node
    else:
        scan = pushed.scan
        source, rids, source_name, domain, epoch = resolve_scan_source(
            scan, catalog, results, params, cache
        )

        if pushed.predicate is not None:
            pred_table = _gather(
                source, rids, _slice_names(source, pushed.predicate.columns())
            )
            mask = np.asarray(
                evaluate(pushed.predicate, pred_table, params), dtype=bool
            )
            rids = rids[mask]

        # Selection in the rid domain composes away: the scan's node
        # lineage over the *surviving* rids equals the materialized
        # path's scan-then-select composition (RidArray compose is a
        # gather).
        node = scan_node_lineage(
            scan, next_key(), rids, source_name, domain, config, epoch
        )

        if pushed.groupby is None and pushed.project is None:
            # Predicate-only tree: the output is the traced relation
            # itself, full schema, late-gathered at the surviving rids.
            return source.take(rids), node

        table = _gather(source, rids, _slice_names(source, pushed.columns))

    if pushed.groupby is not None:
        # The tree's static output schema (keys + aggregate types),
        # inferred against the original child chain like the
        # materializing executors do.
        schema = infer_schema(pushed.groupby, catalog)
        table, local_bw, local_fw = execute_groupby(
            table, pushed.groupby, config, params, schema
        )
        node = compose_node(table.num_rows, node, local_bw, local_fw)

    if pushed.project is not None:
        # Over the aggregate output when a GroupBy ran (e.g. dropping
        # hidden HAVING aggregates), else over the gathered slices.
        columns = {
            alias: np.asarray(evaluate(expr, table, params))
            for expr, alias in pushed.project.exprs
        }
        schema = Schema(
            [
                (alias, infer_expr_type(expr, table.schema))
                for expr, alias in pushed.project.exprs
            ]
        )
        table = Table(columns, schema)
        if pushed.project.distinct:
            # Set semantics: dedup the projected slices with group
            # lineage, exactly as the executors' DISTINCT does (3.2.1).
            table, local_bw, local_fw = execute_distinct(table, config)
            node = compose_node(table.num_rows, node, local_bw, local_fw)
        # Bag projection needs no capture: rids are unchanged (3.2.1).

    return table, node
