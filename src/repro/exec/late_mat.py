"""Late-materializing execution of lineage-scan trees (rid domain).

Runs a :class:`~repro.plan.rewrite.PushedLineageQuery` — a
``[Project?][GroupBy?][Select*]`` tree over one
:class:`~repro.plan.logical.LineageScan` or over a
:class:`~repro.plan.logical.HashJoin` with lineage-backed input(s) —
without ever materializing the traced subset:

1. resolve the traced rid array(s) against the result registry
   (:func:`repro.exec.lineage_scan.resolve_scan_source`, so every
   schema-drift and shrink guard of the materializing path applies);
2. evaluate pushed predicates on rid-gathered slices of **only the
   predicates' columns**, narrowing the rid arrays to survivors;
3. for a join core, gather **only the join keys** on each lineage side,
   probe the shared hash-join kernel on those narrow slices
   (:func:`~repro.exec.vector.join.compute_matches_narrow`), and gather
   the remaining referenced columns only at rids that actually matched;
4. gather the columns the output actually needs — group keys and
   aggregate arguments, projection inputs, or (predicate-only trees)
   the full source schema — at the *surviving* rids only, and feed the
   aggregation / DISTINCT kernels that narrow slice table
   (:func:`~repro.exec.vector.groupby.execute_groupby` /
   :func:`~repro.exec.vector.groupby.execute_distinct`).

Both backends funnel through :func:`execute_pushed` — exactly like
:func:`~repro.exec.lineage_scan.execute_lineage_scan` — so the pushed
path is backend-agnostic by construction.  ``run_child`` hands the
non-lineage side of a pushed join back to the calling backend's own
recursion (so e.g. a derived-table join input executes — and possibly
pushes — exactly as it would outside the rewrite), and ``next_key``
consumes the backend's pre-order occurrence keys, one per lineage leaf.

Output rows *and* captured lineage are bit-identical to the
materializing path: composing the scan's rid-array lineage with a
selection's local rid array *is* the filtered rid array, so
:func:`~repro.exec.lineage_scan.scan_node_lineage` over the surviving
rids equals the materialized path's ``compose_node(select, scan)``;
joins compose the probe's match arrays through the same
:func:`~repro.exec.vector.join.join_lineage_locals` /
:func:`~repro.lineage.composer.merge_binary` calls the vector executor
makes, and aggregation / DISTINCT stages compose through the same
:func:`~repro.lineage.composer.compose_node`.  The property suites
(``tests/property/test_prop_late_mat.py``,
``tests/property/test_prop_late_mat_join.py``) assert this equivalence
over random trees on both backends.
"""

from __future__ import annotations

from typing import Callable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import SchemaError
from ..lineage.cache import LineageResolutionCache
from ..lineage.capture import CaptureConfig
from ..lineage.composer import NodeLineage, compose_node
from ..plan.logical import LogicalPlan
from ..plan.rewrite import PushedJoinSide, PushedLineageQuery
from ..plan.schema import infer_expr_type, infer_schema, join_output_fields
from ..storage.catalog import Catalog
from ..storage.table import ColumnType, Schema, Table
from .lineage_scan import resolve_scan_source, scan_node_lineage

#: Executes one plan subtree through the calling backend's own recursion
#: (used for the non-lineage side of a pushed join).
RunChild = Callable[[LogicalPlan], Tuple[Table, NodeLineage]]


def _slice_names(source: Table, columns) -> List[str]:
    """The source columns to gather, in schema order (deterministic
    narrow schema), or one cheap stand-in column when the stage reads
    none (``SELECT COUNT(*)``, constant predicates) — a zero-column
    :class:`Table` cannot carry a row count."""
    names = [n for n in source.schema.names if n in columns]
    missing = sorted(set(columns) - set(source.schema.names))
    if missing:
        # Same canonical unknown-column error the materializing path's
        # operators would raise when evaluating over the full subset.
        source.column(missing[0])
    if names:
        return names
    for name, ctype in source.schema.fields:
        if ctype is not ColumnType.STR:
            return [name]
    return source.schema.names[:1]


def _gather(source: Table, rids: np.ndarray, names: Sequence[str]) -> Table:
    """Narrow gather: one fancy-index per listed column, nothing else."""
    return Table(
        {n: source.column(n)[rids] for n in names},
        Schema([(n, source.schema.type_of(n)) for n in names]),
    )


class _JoinInput:
    """One resolved input of a pushed join: either a lineage side held as
    ``(source, rids)`` — rows are *never* materialized here, payload
    columns are gathered through ``rids`` at probe-matched positions
    only — or a plain side already executed to a table."""

    __slots__ = ("source", "rids", "table", "node")

    def __init__(self, source=None, rids=None, table=None, node=None):
        self.source = source
        self.rids = rids
        self.table = table
        self.node = node

    @property
    def schema(self) -> Schema:
        # The *full* side schema: join-output renaming must see every
        # column, exactly as the materializing path's subset table would.
        return (self.source if self.table is None else self.table).schema

    def key_column(self, name: str) -> np.ndarray:
        """A join-key column, rid-gathered for lineage sides."""
        if self.table is not None:
            return self.table.column(name)
        return self.source.column(name)[self.rids]

    def output_column(self, name: str, matched: np.ndarray) -> np.ndarray:
        """A payload column at probe-matched side positions only — the
        late gather: unmatched rows never surface their payload."""
        if self.table is not None:
            return self.table.column(name)[matched]
        return self.source.column(name)[self.rids[matched]]


def _resolve_scan_side(
    side: PushedJoinSide,
    key: str,
    catalog: Catalog,
    results: Optional[Mapping[str, object]],
    config: CaptureConfig,
    params: Optional[dict],
    cache: Optional[LineageResolutionCache],
) -> _JoinInput:
    """Resolve a lineage-backed join side to ``(source, surviving rids)``
    plus its node lineage, filtering in the rid domain (identical to the
    linear pushed path's scan+Select handling)."""
    from ..expr.ast import evaluate

    source, rids, source_name, domain, epoch = resolve_scan_source(
        side.scan, catalog, results, params, cache
    )
    if side.predicate is not None:
        pred_table = _gather(
            source, rids, _slice_names(source, side.predicate.columns())
        )
        mask = np.asarray(
            evaluate(side.predicate, pred_table, params), dtype=bool
        )
        rids = rids[mask]
    node = scan_node_lineage(
        side.scan, key, rids, source_name, domain, config, epoch
    )
    return _JoinInput(source=source, rids=rids, node=node)


def _run_join(
    pushed: PushedLineageQuery,
    catalog: Catalog,
    results: Optional[Mapping[str, object]],
    config: CaptureConfig,
    params: Optional[dict],
    next_key: Callable[[], str],
    run_child: RunChild,
    cache: Optional[LineageResolutionCache],
) -> Tuple[Table, NodeLineage]:
    """Execute a pushed join core: narrow key probe, late payload gather,
    and the same local-lineage merge the vector executor performs."""
    from .vector.join import compute_matches_narrow, join_lineage_locals
    from ..lineage.composer import merge_binary

    pj = pushed.join
    join = pj.join
    inputs: List[_JoinInput] = []
    # Strict left-then-right order: occurrence keys are assigned in leaf
    # pre-order, and run_child consumes the plain side's keys itself.
    for side in (pj.left, pj.right):
        if side.scan is not None:
            inputs.append(
                _resolve_scan_side(
                    side, next_key(), catalog, results, config, params, cache
                )
            )
        else:
            table, node = run_child(side.plan)
            inputs.append(_JoinInput(table=table, node=node))
    left, right = inputs

    matches = compute_matches_narrow(
        [left.key_column(k) for k in join.left_keys],
        [right.key_column(k) for k in join.right_keys],
        join.pkfk,
    )

    fields = join_output_fields(left.schema, right.schema)
    src_names = left.schema.names + right.schema.names
    out_names = [name for name, _, _ in fields]
    needed = None if pushed.columns is None else set(pushed.columns)
    if needed is not None:
        missing = sorted(needed - set(out_names))
        if missing:
            # Same canonical error the materializing path raises when an
            # operator evaluates the name over the full join output.
            raise SchemaError(
                f"unknown column {missing[0]!r}; available: {out_names}"
            )
    n_left_cols = len(left.schema.names)
    keep = [
        i
        for i in range(len(fields))
        if needed is None or fields[i][0] in needed
    ]
    if not keep:
        # Nothing referenced (SELECT COUNT(*) over a join): one cheap
        # stand-in column carries the row count.
        keep = [
            next(
                (i for i, (_, t, _) in enumerate(fields) if t is not ColumnType.STR),
                0,
            )
        ]
    columns = {}
    out_fields = []
    for i in keep:
        out_name, ctype, _ = fields[i]
        side = left if i < n_left_cols else right
        matched = matches.out_left if i < n_left_cols else matches.out_right
        columns[out_name] = side.output_column(src_names[i], matched)
        out_fields.append((out_name, ctype))
    out = Table(columns, Schema(out_fields))

    l_bw, l_fw, r_bw, r_fw = join_lineage_locals(matches, config, join.pkfk)
    node = merge_binary(
        out.num_rows, left.node, right.node, l_bw, l_fw, r_bw, r_fw
    )
    return out, node


def execute_pushed(
    pushed: PushedLineageQuery,
    catalog: Catalog,
    results: Optional[Mapping[str, object]],
    config: CaptureConfig,
    params: Optional[dict],
    next_key: Callable[[], str],
    run_child: RunChild,
    cache: Optional[LineageResolutionCache] = None,
) -> Tuple[Table, NodeLineage]:
    """Execute a pushed tree; returns ``(output table, node lineage)``.

    ``next_key`` yields the backend's pre-order occurrence keys (one per
    lineage-scan leaf); ``run_child`` executes a non-lineage join input
    through the backend's own recursion.
    """
    from ..expr.ast import evaluate
    from .vector.groupby import execute_distinct, execute_groupby

    if pushed.join is not None:
        table, node = _run_join(
            pushed, catalog, results, config, params, next_key, run_child, cache
        )
        if pushed.predicate is not None:
            # The residual WHERE binds above the join; run it over the
            # narrow join output with standard selection lineage.
            from .vector.select import execute_select

            table, local_bw, local_fw = execute_select(
                table, pushed.predicate, config, params
            )
            node = compose_node(table.num_rows, node, local_bw, local_fw)
    else:
        scan = pushed.scan
        source, rids, source_name, domain, epoch = resolve_scan_source(
            scan, catalog, results, params, cache
        )

        if pushed.predicate is not None:
            pred_table = _gather(
                source, rids, _slice_names(source, pushed.predicate.columns())
            )
            mask = np.asarray(
                evaluate(pushed.predicate, pred_table, params), dtype=bool
            )
            rids = rids[mask]

        # Selection in the rid domain composes away: the scan's node
        # lineage over the *surviving* rids equals the materialized
        # path's scan-then-select composition (RidArray compose is a
        # gather).
        node = scan_node_lineage(
            scan, next_key(), rids, source_name, domain, config, epoch
        )

        if pushed.groupby is None and pushed.project is None:
            # Predicate-only tree: the output is the traced relation
            # itself, full schema, late-gathered at the surviving rids.
            return source.take(rids), node

        table = _gather(source, rids, _slice_names(source, pushed.columns))

    if pushed.groupby is not None:
        # The tree's static output schema (keys + aggregate types),
        # inferred against the original child chain like the
        # materializing executors do.
        schema = infer_schema(pushed.groupby, catalog)
        table, local_bw, local_fw = execute_groupby(
            table, pushed.groupby, config, params, schema
        )
        node = compose_node(table.num_rows, node, local_bw, local_fw)

    if pushed.project is not None:
        # Over the aggregate output when a GroupBy ran (e.g. dropping
        # hidden HAVING aggregates), else over the gathered slices.
        columns = {
            alias: np.asarray(evaluate(expr, table, params))
            for expr, alias in pushed.project.exprs
        }
        schema = Schema(
            [
                (alias, infer_expr_type(expr, table.schema))
                for expr, alias in pushed.project.exprs
            ]
        )
        table = Table(columns, schema)
        if pushed.project.distinct:
            # Set semantics: dedup the projected slices with group
            # lineage, exactly as the executors' DISTINCT does (3.2.1).
            table, local_bw, local_fw = execute_distinct(table, config)
            node = compose_node(table.num_rows, node, local_bw, local_fw)
        # Bag projection needs no capture: rids are unchanged (3.2.1).

    return table, node
