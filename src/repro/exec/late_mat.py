"""Late-materializing execution of lineage-scan trees (rid domain).

Runs a :class:`~repro.plan.rewrite.PushedLineageQuery` — a
``[Project?][GroupBy?][Select*]`` tree over one
:class:`~repro.plan.logical.LineageScan` or over a flattened **chain**
(or snowflake tree) of hash equi-joins with lineage-backed leaves —
without ever materializing the traced subset *or any intermediate join
output*:

1. resolve the traced rid array(s) against the result registry
   (:func:`repro.exec.lineage_scan.resolve_scan_source`, so every
   schema-drift and shrink guard of the materializing path applies);
2. evaluate pushed predicates on rid-gathered slices of **only the
   predicates' columns**, narrowing the rid arrays to survivors;
3. for a join core, probe the chain hop by hop: each hop gathers **only
   its join keys** through the per-leaf position arrays accumulated so
   far (:func:`~repro.exec.vector.join.compute_matches_oriented`),
   picks its hash-build side from cardinality statistics
   (:func:`~repro.substrate.stats.choose_build_side` — the pk-fk fast
   probe when one side's keys are known unique, e.g. a lineage scan
   over a dimension table), and composes the match arrays into the
   position arrays — a join output row is represented as one position
   per leaf, never as materialized payload;
4. gather the columns the output actually needs — group keys and
   aggregate arguments, projection inputs, or (predicate-only trees)
   the full core schema — at the *final surviving* positions only, and
   feed the aggregation / DISTINCT kernels that narrow slice table
   (:func:`~repro.exec.vector.groupby.execute_groupby` /
   :func:`~repro.exec.vector.groupby.execute_distinct`).

Both backends funnel through :func:`execute_pushed` — exactly like
:func:`~repro.exec.lineage_scan.execute_lineage_scan` — so the pushed
path is backend-agnostic by construction.  ``run_child`` hands plain
(non-lineage) chain leaves back to the calling backend's own recursion
(so e.g. a derived-table join input executes — and possibly pushes —
exactly as it would outside the rewrite), and ``next_key`` consumes the
backend's pre-order occurrence keys, one per lineage leaf.

Output rows *and* captured lineage are bit-identical to the
materializing path: composing the scan's rid-array lineage with a
selection's local rid array *is* the filtered rid array, so
:func:`~repro.exec.lineage_scan.scan_node_lineage` over the surviving
rids equals the materialized path's ``compose_node(select, scan)``;
every chain hop composes its (canonical-order) match arrays through the
same :func:`~repro.exec.vector.join.join_lineage_locals` /
:func:`~repro.lineage.composer.merge_binary` calls the vector executor
makes — a swapped build side re-sorts its matches back into canonical
probe order first — and aggregation / DISTINCT stages compose through
the same :func:`~repro.lineage.composer.compose_node`.  The property
suites (``tests/property/test_prop_late_mat.py``,
``tests/property/test_prop_late_mat_join.py``,
``tests/property/test_prop_late_mat_chain.py``) assert this equivalence
over random trees and chains on both backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import SchemaError
from ..lineage.cache import LineageResolutionCache
from ..lineage.capture import CaptureConfig
from ..lineage.composer import (
    NodeLineage,
    compose_node,
    merge_binary,
    selection_locals,
)
from ..plan.logical import LogicalPlan, Scan, Select
from ..plan.rewrite import PushedJoin, PushedJoinHop, PushedJoinSide, PushedLineageQuery
from ..plan.schema import infer_expr_type, infer_schema, join_output_fields
from ..storage.catalog import Catalog
from ..storage.table import ColumnType, Schema, Table
from ..substrate.stats import (
    UNIQUENESS_PROBE_MAX_ROWS,
    JoinSideStats,
    choose_build_side,
)
from . import morsel
from .lineage_scan import resolve_scan_source, scan_node_lineage
from .timings import (
    LATE_MAT_BUILD_SWAPS,
    LATE_MAT_CHAIN_HOPS,
    LATE_MAT_PKFK_DETECTED,
)

#: Executes one plan subtree through the calling backend's own recursion
#: (used for the plain, non-lineage leaves of a pushed join chain).
RunChild = Callable[[LogicalPlan], Tuple[Table, NodeLineage]]


@dataclass
class PushedStats:
    """Runtime decisions of one execution's pushed cores, surfaced by the
    executors as ``timings`` counters so tests and benchmarks can assert
    *what* ran (chain flattening, build-side swaps, detected pk-fk
    probes) without timing anything."""

    chain_hops: int = 0  # joins flattened beyond the first, per core
    build_swaps: int = 0  # hops that built on the plan-right side
    pkfk_detected: int = 0  # hops upgraded to the pk-fk probe by stats


def fold_push_stats(timings: Dict[str, float], stats: PushedStats) -> None:
    """Surface a run's pushed-chain decisions as ``timings`` counters
    (both backends call this): ``late_mat_chain_hops`` counts joins
    flattened beyond each core's first (PR 4 materialized at those
    hops), ``late_mat_build_swaps`` hops that built on the plan-right
    side, and ``late_mat_pkfk_detected`` hops upgraded to the pk-fk
    probe by column statistics alone."""
    if stats.chain_hops:
        timings[LATE_MAT_CHAIN_HOPS] = float(stats.chain_hops)
    if stats.build_swaps:
        timings[LATE_MAT_BUILD_SWAPS] = float(stats.build_swaps)
    if stats.pkfk_detected:
        timings[LATE_MAT_PKFK_DETECTED] = float(stats.pkfk_detected)


def _slice_names(source: Table, columns) -> List[str]:
    """The source columns to gather, in schema order (deterministic
    narrow schema), or one cheap stand-in column when the stage reads
    none (``SELECT COUNT(*)``, constant predicates) — a zero-column
    :class:`Table` cannot carry a row count."""
    names = [n for n in source.schema.names if n in columns]
    missing = sorted(set(columns) - set(source.schema.names))
    if missing:
        # Same canonical unknown-column error the materializing path's
        # operators would raise when evaluating over the full subset.
        source.column(missing[0])
    if names:
        return names
    for name, ctype in source.schema.fields:
        if ctype is not ColumnType.STR:
            return [name]
    return source.schema.names[:1]


def _gather(
    source: Table,
    rids: np.ndarray,
    names: Sequence[str],
    workers: int = 1,
    counter: Optional[morsel.MorselCounter] = None,
) -> Table:
    """Narrow gather: one (morsel-parallel) fancy-index per listed
    column, nothing else."""
    return Table(
        {n: morsel.gather(source.column(n), rids, workers, counter) for n in names},
        Schema([(n, source.schema.type_of(n)) for n in names]),
    )


class _JoinInput:
    """One resolved leaf of a pushed join chain: either a lineage leaf
    held as ``(source, rids)`` — rows are *never* materialized here,
    payload columns are gathered through ``rids`` at chain-surviving
    positions only — or a plain leaf already executed to a table.

    ``base_table`` names the catalog relation the leaf's row *positions*
    index into (the traced base table of a backward scan, or the scanned
    table of a plain ``[Select*] Scan`` leaf); the chain executor uses it
    to consult column statistics for build-side and pk-fk decisions.
    ``None`` means no base-table statistics apply (forward scans, derived
    tables, nested plans).
    """

    __slots__ = ("source", "rids", "table", "node", "base_table")

    def __init__(self, source=None, rids=None, table=None, node=None, base_table=None):
        self.source = source
        self.rids = rids
        self.table = table
        self.node = node
        self.base_table = base_table

    @property
    def schema(self) -> Schema:
        # The *full* leaf schema: join-output renaming must see every
        # column, exactly as the materializing path's subset table would.
        return (self.source if self.table is None else self.table).schema

    @property
    def num_rows(self) -> int:
        if self.table is not None:
            return self.table.num_rows
        return int(self.rids.shape[0])


class _ChainState:
    """A (partially joined) chain node held in the position domain.

    Rather than materializing a join output, the chain executor carries
    one position array per underlying leaf: output row ``i`` of this
    node is the combination of ``positions[k][i]`` for every leaf ``k``
    (``None`` = identity, a leaf not yet joined or filtered).  Columns
    are gathered through these arrays on demand — join keys per hop,
    predicate slices per pushed ``Select``, payload only once at the
    chain root — so unmatched rows never surface any payload and
    intermediate hops move nothing but ``int64`` positions.
    """

    __slots__ = ("inputs", "positions", "num_rows", "schema", "origins", "node", "_index")

    def __init__(
        self,
        inputs: List[_JoinInput],
        positions: List[Optional[np.ndarray]],
        num_rows: int,
        schema: Schema,
        origins: List[Tuple[int, str]],
        node: NodeLineage,
    ):
        self.inputs = inputs
        self.positions = positions
        self.num_rows = num_rows
        self.schema = schema
        self.origins = origins  # per output column: (leaf index, leaf column)
        self.node = node
        self._index: Dict[str, int] = {n: i for i, n in enumerate(schema.names)}

    @classmethod
    def for_leaf(cls, leaf: _JoinInput) -> "_ChainState":
        schema = leaf.schema
        return cls(
            [leaf],
            [None],
            leaf.num_rows,
            schema,
            [(0, name) for name in schema.names],
            leaf.node,
        )

    def column_values(
        self,
        name: str,
        workers: int = 1,
        counter: Optional[morsel.MorselCounter] = None,
    ) -> np.ndarray:
        """One output column of this chain node, gathered through the
        leaf's position array (never more rows than currently survive)."""
        idx = self._index.get(name)
        if idx is None:
            # Canonical unknown-column error, as the materializing path's
            # operators raise over the full join output.
            raise SchemaError(
                f"unknown column {name!r}; available: {self.schema.names}"
            )
        leaf_idx, src = self.origins[idx]
        leaf = self.inputs[leaf_idx]
        pos = self.positions[leaf_idx]
        if leaf.table is not None:
            values = leaf.table.column(src)
            return values if pos is None else morsel.gather(values, pos, workers, counter)
        base = leaf.source.column(src)
        if pos is None:
            return morsel.gather(base, leaf.rids, workers, counter)
        return morsel.gather(base, morsel.gather(leaf.rids, pos, workers, counter), workers, counter)

    def key_stats(self, keys: Sequence[str], catalog: Catalog) -> JoinSideStats:
        """Cardinality + key-uniqueness statistics for this node as one
        join input.  Uniqueness is only derivable for single-leaf nodes
        (joins may fan rows out) whose positions are subsets of a catalog
        base table: a unique base column stays unique under any subset
        gather, which covers the ``Lb``-over-dimension-table fast path.
        """
        unique: Optional[bool] = None
        if len(self.inputs) == 1 and self.inputs[0].base_table is not None:
            base = self.inputs[0].base_table
            base_rows = catalog.get_versioned(base)[0].num_rows
            if base_rows <= UNIQUENESS_PROBE_MAX_ROWS:
                # Deriving uniqueness scans the base column once per
                # epoch; keep that cold hit out of interactive statements
                # over huge relations (cardinality still decides there).
                for key in keys:
                    idx = self._index.get(key)
                    if idx is None:
                        continue  # the probe will raise the canonical error
                    stats = catalog.column_stats(base, self.origins[idx][1])
                    if stats.is_unique:
                        unique = True
                        break
        return JoinSideStats(rows=self.num_rows, keys_unique=unique)

    def narrow(self, kept: np.ndarray, node: NodeLineage) -> "_ChainState":
        """Keep only the listed output rows (a pushed ``Select``)."""
        return _ChainState(
            self.inputs,
            [kept if p is None else p[kept] for p in self.positions],
            int(kept.shape[0]),
            self.schema,
            self.origins,
            node,
        )


def _plain_base_table(plan: LogicalPlan) -> Optional[str]:
    """The catalog table behind a plain ``[Select*] Scan`` leaf (filters
    preserve column uniqueness), else ``None``."""
    while isinstance(plan, Select):
        plan = plan.child
    return plan.table if isinstance(plan, Scan) else None


class _ChainContext:
    """Execution-scoped handles threaded through the chain recursion."""

    __slots__ = (
        "catalog", "results", "config", "params",
        "next_key", "run_child", "cache", "stats",
        "workers", "counter",
    )

    def __init__(
        self, catalog, results, config, params, next_key, run_child, cache, stats,
        workers=1, counter=None,
    ):
        self.catalog = catalog
        self.results = results
        self.config = config
        self.params = params
        self.next_key = next_key
        self.run_child = run_child
        self.cache = cache
        self.stats = stats
        self.workers = workers
        self.counter = counter


def _resolve_scan_side(
    side: PushedJoinSide,
    key: str,
    catalog: Catalog,
    results: Optional[Mapping[str, object]],
    config: CaptureConfig,
    params: Optional[dict],
    cache: Optional[LineageResolutionCache],
    workers: int = 1,
    counter: Optional[morsel.MorselCounter] = None,
) -> _JoinInput:
    """Resolve a lineage-backed chain leaf to ``(source, surviving rids)``
    plus its node lineage, filtering in the rid domain (identical to the
    linear pushed path's scan+Select handling)."""
    from ..expr.ast import evaluate

    source, rids, source_name, domain, epoch = resolve_scan_source(
        side.scan, catalog, results, params, cache
    )
    if side.predicate is not None:
        pred_table = _gather(
            source, rids, _slice_names(source, side.predicate.columns()),
            workers, counter,
        )
        mask = np.asarray(
            evaluate(side.predicate, pred_table, params), dtype=bool
        )
        rids = rids[mask]
    node = scan_node_lineage(
        side.scan, key, rids, source_name, domain, config, epoch
    )
    return _JoinInput(
        source=source,
        rids=rids,
        node=node,
        # Positions of a backward scan index the traced base relation, so
        # that relation's column statistics transfer to the gathered keys.
        base_table=source_name if side.scan.direction == "backward" else None,
    )


def _chain_select(
    state: _ChainState,
    predicate,
    config: CaptureConfig,
    params: Optional[dict],
    workers: int = 1,
    counter: Optional[morsel.MorselCounter] = None,
) -> _ChainState:
    """A pushed ``Select`` over a chain node, in the position domain:
    gather only the predicate's columns, narrow every leaf's positions to
    the passing rows, and compose the same 1-to-1 selection locals the
    materializing path's :func:`~repro.exec.vector.select.execute_select`
    builds."""
    from ..expr.ast import evaluate

    referenced = predicate.columns()
    names = [n for n in state.schema.names if n in referenced]
    missing = sorted(set(referenced) - set(state.schema.names))
    if missing:
        raise SchemaError(
            f"unknown column {missing[0]!r}; available: {state.schema.names}"
        )
    if not names:
        # Constant predicate: one cheap stand-in column carries the rows.
        names = _slice_names(_StandInSchema(state.schema), referenced)
    pred_table = Table(
        {n: state.column_values(n, workers, counter) for n in names},
        Schema([(n, state.schema.type_of(n)) for n in names]),
    )
    mask = np.asarray(evaluate(predicate, pred_table, params), dtype=bool)
    kept = np.nonzero(mask)[0].astype(np.int64)
    local_bw, local_fw = selection_locals(kept, mask.shape[0], config)
    node = compose_node(int(kept.shape[0]), state.node, local_bw, local_fw)
    return state.narrow(kept, node)


class _StandInSchema:
    """Adapter exposing a chain node's schema to :func:`_slice_names`
    (which only reads ``.schema`` and raises through ``.column``)."""

    __slots__ = ("schema",)

    def __init__(self, schema: Schema):
        self.schema = schema

    def column(self, name: str):
        raise SchemaError(
            f"unknown column {name!r}; available: {self.schema.names}"
        )


def _run_hop(hop: PushedJoinHop, ctx: _ChainContext) -> _ChainState:
    """Execute one chain hop (leaf or join) to a position-domain node."""
    if isinstance(hop, PushedJoin):
        left = _run_hop(hop.left, ctx)
        right = _run_hop(hop.right, ctx)
        state = _join_states(hop, left, right, ctx)
        if hop.predicate is not None:
            state = _chain_select(
                state, hop.predicate, ctx.config, ctx.params,
                ctx.workers, ctx.counter,
            )
        return state
    if hop.scan is not None:
        leaf = _resolve_scan_side(
            hop, ctx.next_key(), ctx.catalog, ctx.results,
            ctx.config, ctx.params, ctx.cache,
            ctx.workers, ctx.counter,
        )
    else:
        table, node = ctx.run_child(hop.plan)
        leaf = _JoinInput(
            table=table, node=node, base_table=_plain_base_table(hop.plan)
        )
    return _ChainState.for_leaf(leaf)


def _join_states(
    hop: PushedJoin, left: _ChainState, right: _ChainState, ctx: _ChainContext
) -> _ChainState:
    """One hash-join hop over two chain nodes: narrow key probe with a
    stats-chosen build side, position composition, and the same
    local-lineage merge the vector executor performs."""
    from .vector.join import compute_matches_oriented, join_lineage_locals

    join = hop.join
    left_keys = [left.column_values(k, ctx.workers, ctx.counter) for k in join.left_keys]
    right_keys = [right.column_values(k, ctx.workers, ctx.counter) for k in join.right_keys]
    decision = choose_build_side(
        left.key_stats(join.left_keys, ctx.catalog),
        right.key_stats(join.right_keys, ctx.catalog),
        join.pkfk,
    )
    if ctx.stats is not None:
        if decision.swapped:
            ctx.stats.build_swaps += 1
        if decision.pkfk and not join.pkfk:
            ctx.stats.pkfk_detected += 1
    matches = compute_matches_oriented(
        left_keys, right_keys, decision.build_left, decision.pkfk,
        workers=ctx.workers, counter=ctx.counter,
    )

    fields = join_output_fields(left.schema, right.schema)
    n_left_cols = len(left.schema.names)
    origins: List[Tuple[int, str]] = []
    for i in range(len(fields)):
        if i < n_left_cols:
            origins.append(left.origins[i])
        else:
            leaf_idx, src = right.origins[i - n_left_cols]
            origins.append((leaf_idx + len(left.inputs), src))
    positions = [
        matches.out_left if p is None else p[matches.out_left]
        for p in left.positions
    ] + [
        matches.out_right if p is None else p[matches.out_right]
        for p in right.positions
    ]

    # Lineage composes per hop exactly as the materializing executors do
    # (canonical-order matches, plan-level pkfk flag), so a chain's
    # captured lineage is the same merge_binary fold the fallback builds.
    l_bw, l_fw, r_bw, r_fw = join_lineage_locals(matches, ctx.config, join.pkfk)
    node = merge_binary(
        matches.num_out, left.node, right.node, l_bw, l_fw, r_bw, r_fw
    )
    return _ChainState(
        left.inputs + right.inputs,
        positions,
        matches.num_out,
        Schema([(n, t) for n, t, _ in fields]),
        origins,
        node,
    )


def _gather_chain_output(
    state: _ChainState,
    columns,
    workers: int = 1,
    counter: Optional[morsel.MorselCounter] = None,
) -> Table:
    """Materialize the chain's narrow output table: only the referenced
    columns (or, for ``columns=None``, the full core schema), gathered at
    the final surviving positions only — the late gather."""
    needed = None if columns is None else set(columns)
    names = state.schema.names
    if needed is not None:
        missing = sorted(needed - set(names))
        if missing:
            # Same canonical error the materializing path raises when an
            # operator evaluates the name over the full join output.
            raise SchemaError(
                f"unknown column {missing[0]!r}; available: {names}"
            )
    keep = [n for n in names if needed is None or n in needed]
    if not keep:
        # Nothing referenced (SELECT COUNT(*) over a chain): one cheap
        # stand-in column carries the row count.
        keep = [
            next(
                (n for n, t in state.schema.fields if t is not ColumnType.STR),
                names[0],
            )
        ]
    return Table(
        {n: state.column_values(n, workers, counter) for n in keep},
        Schema([(n, state.schema.type_of(n)) for n in keep]),
    )


def execute_pushed(
    pushed: PushedLineageQuery,
    catalog: Catalog,
    results: Optional[Mapping[str, object]],
    config: CaptureConfig,
    params: Optional[dict],
    next_key: Callable[[], str],
    run_child: RunChild,
    cache: Optional[LineageResolutionCache] = None,
    stats: Optional[PushedStats] = None,
    workers: int = 1,
    counter: Optional[morsel.MorselCounter] = None,
) -> Tuple[Table, NodeLineage]:
    """Execute a pushed tree; returns ``(output table, node lineage)``.

    ``next_key`` yields the backend's pre-order occurrence keys (one per
    lineage-scan leaf); ``run_child`` executes a plain chain leaf through
    the backend's own recursion; ``stats`` (when provided) accumulates
    the run's chain-hop / build-side / pk-fk decisions for the executors'
    ``timings`` counters.  ``workers > 1`` runs the rid gathers, hop
    probes, and group-by kernels morsel-parallel (bit-identical output,
    see :mod:`repro.exec.morsel`).
    """
    from ..expr.ast import evaluate
    from .vector.groupby import execute_distinct, execute_groupby

    if pushed.join is not None:
        if stats is not None:
            stats.chain_hops += pushed.chain_hops
        ctx = _ChainContext(
            catalog, results, config, params, next_key, run_child, cache, stats,
            workers, counter,
        )
        state = _run_hop(pushed.join, ctx)
        if pushed.predicate is not None:
            # The residual WHERE binds above the chain; evaluate it in
            # the position domain (only its columns gathered, standard
            # selection lineage) so the late gather below sees only the
            # final survivors.
            state = _chain_select(state, pushed.predicate, config, params, workers, counter)
        table = _gather_chain_output(state, pushed.columns, workers, counter)
        node = state.node
        if pushed.groupby is None and pushed.project is None:
            return table, node
    else:
        scan = pushed.scan
        source, rids, source_name, domain, epoch = resolve_scan_source(
            scan, catalog, results, params, cache
        )

        if pushed.predicate is not None:
            pred_table = _gather(
                source, rids, _slice_names(source, pushed.predicate.columns()),
                workers, counter,
            )
            mask = np.asarray(
                evaluate(pushed.predicate, pred_table, params), dtype=bool
            )
            rids = rids[mask]

        # Selection in the rid domain composes away: the scan's node
        # lineage over the *surviving* rids equals the materialized
        # path's scan-then-select composition (RidArray compose is a
        # gather).
        node = scan_node_lineage(
            scan, next_key(), rids, source_name, domain, config, epoch
        )

        if pushed.groupby is None and pushed.project is None:
            # Predicate-only tree: the output is the traced relation
            # itself, full schema, late-gathered at the surviving rids.
            return source.take(rids), node

        table = _gather(
            source, rids, _slice_names(source, pushed.columns), workers, counter
        )

    if pushed.groupby is not None:
        # The tree's static output schema (keys + aggregate types),
        # inferred against the original child chain like the
        # materializing executors do.
        schema = infer_schema(pushed.groupby, catalog)
        table, local_bw, local_fw = execute_groupby(
            table, pushed.groupby, config, params, schema,
            workers=workers, counter=counter,
        )
        node = compose_node(table.num_rows, node, local_bw, local_fw)

    if pushed.project is not None:
        # Over the aggregate output when a GroupBy ran (e.g. dropping
        # hidden HAVING aggregates), else over the gathered slices.
        columns = {
            alias: np.asarray(evaluate(expr, table, params))
            for expr, alias in pushed.project.exprs
        }
        schema = Schema(
            [
                (alias, infer_expr_type(expr, table.schema))
                for expr, alias in pushed.project.exprs
            ]
        )
        table = Table(columns, schema)
        if pushed.project.distinct:
            # Set semantics: dedup the projected slices with group
            # lineage, exactly as the executors' DISTINCT does (3.2.1).
            table, local_bw, local_fw = execute_distinct(table, config)
            node = compose_node(table.num_rows, node, local_bw, local_fw)
        # Bag projection needs no capture: rids are unchanged (3.2.1).

    return table, node


def batchable_pushed(pushed: PushedLineageQuery, config: CaptureConfig) -> bool:
    """Whether N same-plan executions differing only in the rid subset
    bound to the lineage scan's parameter can coalesce into one shared
    pass (:func:`execute_pushed_batch`).

    Restricted to the crossfilter re-aggregation shape: a single
    *backward* lineage-scan core (no join), a parameterized rid subset,
    capture disabled (brush statements run ``capture=None``), and a
    ``COUNT(*)``-only GROUP BY with no HAVING, optionally under a bag
    projection.  Everything else falls back to per-binding execution.
    """
    from ..expr.ast import Param

    if config.enabled:
        return False
    if pushed.join is not None or pushed.scan is None:
        return False
    if pushed.scan.direction != "backward":
        return False
    if not isinstance(pushed.scan.rids, Param):
        return False
    gb = pushed.groupby
    if gb is None or gb.having is not None:
        return False
    if any(agg.func != "count" or agg.arg is not None for agg in gb.aggs):
        return False
    if pushed.project is not None and pushed.project.distinct:
        return False
    return True


def execute_pushed_batch(
    pushed: PushedLineageQuery,
    catalog: Catalog,
    results: Optional[Mapping[str, object]],
    params_list: Sequence[Optional[dict]],
    workers: int = 1,
    counter: Optional[morsel.MorselCounter] = None,
    lineage_cache=None,
) -> List[Table]:
    """Execute one :func:`batchable_pushed` tree for N parameter bindings
    in a single shared pass; returns one output table per binding, each
    bit-identical to what :func:`execute_pushed` produces for that
    binding alone.

    The serving workload shape (N concurrent brushes against one view)
    makes per-binding work almost entirely redundant: the bindings' rid
    subsets overlap, and per-binding execution re-resolves, re-gathers,
    and — dominant for string group keys — re-factorizes the shared
    rows N times.  This path instead:

    1. resolves every binding's ``Lb`` in **one**
       :meth:`~repro.lineage.capture.QueryLineage.backward_batch` CSR
       pass (shared index materialization and dedup scratch);
    2. forms the sorted-distinct **union** of the rid sets with one
       bitmap over the base-row domain (O(domain + Σ|rids|) — no sort:
       ``np.flatnonzero`` of the flags is already ascending);
    3. evaluates the pushed predicate and gathers / factorizes the
       group keys **once** over the union, then scatters the shared
       codes into a rid-indexed map (``-1`` = outside the filtered
       union);
    4. maps each binding's rids to codes in **one** gather and derives
       its groups with :func:`~repro.exec.vector.kernels.subset_groups`
       — first-occurrence code order is provably the group order
       ``factorize`` assigns on the binding's own rows — aggregating
       the ``COUNT(*)`` columns with one bincount.

    When the view's backward index is a **partition** (each base rid in
    at most one bar's bucket — the GROUP BY crossfilter shape), the
    shared pass decomposes further *per bar*
    (:func:`~repro.exec.lineage_scan.resolve_scan_bars_batch` +
    :func:`_batch_tables_by_bars`): per-bar count and first-rid vectors
    are computed once over disjoint bar segments totalling the union
    mass, and each binding's answer reduces to summing / minimizing a
    handful of ``num_codes``-sized vectors — no per-binding pass over
    its Σ rows at all.  Non-partition indexes (or very wide brushes) use
    the set-based stage (:func:`_batch_tables_from_sets`).

    Callers must ensure all bindings agree on every parameter except the
    scan's rid parameter (shared predicate/key evaluation reads the
    first binding's params); ``DatabaseServer.sql_batch`` checks this
    and falls back otherwise.
    """
    from .lineage_scan import resolve_scan_bars_batch, resolve_scan_sources_batch

    scan = pushed.scan
    decomposed = resolve_scan_bars_batch(
        scan, catalog, results, params_list, cache=lineage_cache
    )
    if decomposed is not None:
        tables = _batch_tables_by_bars(
            pushed, catalog, decomposed, params_list[0], workers, counter
        )
        if tables is not None:
            return tables
        # Per-bar matrices would be too large (high-cardinality group
        # keys): reassemble each binding's set from its disjoint bar
        # segments and run the set-based stage instead.
        source, probes, bar_ids, bar_sets, _name, domain, _epoch = decomposed
        rid_sets = [
            np.unique(
                np.concatenate(
                    [bar_sets[j] for j in np.searchsorted(bar_ids, probe)]
                )
            )
            if probe.size
            else np.empty(0, dtype=np.int64)
            for probe in probes
        ]
    else:
        source, rid_sets, _name, domain, _epoch = resolve_scan_sources_batch(
            scan, catalog, results, params_list, cache=lineage_cache
        )
    return _batch_tables_from_sets(
        pushed, catalog, source, rid_sets, domain, params_list[0],
        workers, counter,
    )


def _shared_batch_codes(
    pushed: PushedLineageQuery,
    source: Table,
    rows: np.ndarray,
    shared_params: Optional[dict],
    workers: int,
    counter: Optional[morsel.MorselCounter],
):
    """The shared head of both batch stages: evaluate the pushed
    predicate over ``rows`` (one gather of only the predicate's
    columns), then gather / factorize the group keys once over the
    survivors.  Returns ``(mask, codes, num_codes, key_by_code)`` where
    ``mask`` is None without a predicate and ``codes`` aligns with the
    surviving rows (``rows[mask]``)."""
    from ..expr.ast import evaluate
    from .vector.kernels import factorize

    mask = None
    if pushed.predicate is not None:
        pred_table = _gather(
            source, rows, _slice_names(source, pushed.predicate.columns()),
            workers, counter,
        )
        mask = np.asarray(
            evaluate(pushed.predicate, pred_table, shared_params), dtype=bool
        )
        rows = rows[mask]

    gb = pushed.groupby
    kept_table = _gather(
        source, rows, _slice_names(source, pushed.columns), workers, counter
    )
    key_arrays = [
        np.asarray(evaluate(e, kept_table, shared_params)) for e, _ in gb.keys
    ]
    n_kept = int(rows.shape[0])
    if n_kept == 0:
        codes, num_codes = np.empty(0, dtype=np.int64), 0
        reps = np.empty(0, dtype=np.int64)
    elif key_arrays:
        codes, num_codes, reps = factorize(key_arrays)
    else:
        codes, num_codes = np.zeros(n_kept, dtype=np.int64), 1
        reps = np.zeros(1, dtype=np.int64)
    # Per-code representative key values (num_codes-sized): a code's key
    # value is the same on every row of the code, so any binding's output
    # key column is one tiny gather from these.
    key_by_code = [arr[reps] for arr in key_arrays]
    return mask, codes, num_codes, key_by_code


def _batch_output_table(
    pushed: PushedLineageQuery,
    schema: Schema,
    group_codes: np.ndarray,
    counts: np.ndarray,
    key_by_code: List[np.ndarray],
    shared_params: Optional[dict],
) -> Table:
    """One binding's output table from its (first-occurrence ordered)
    group codes and counts, plus the optional bag projection on top."""
    from ..expr.ast import evaluate

    gb = pushed.groupby
    columns: Dict[str, np.ndarray] = {}
    for (_expr, alias), by_code in zip(gb.keys, key_by_code, strict=True):
        columns[alias] = by_code[group_codes]
    for i, agg in enumerate(gb.aggs):
        if counts.shape[0] == 0:
            columns[agg.alias] = np.empty(
                0, dtype=schema.type_of(agg.alias).numpy_dtype
            )
        else:
            columns[agg.alias] = counts if i == 0 else counts.copy()
    table = Table(columns, schema)
    if pushed.project is not None:
        table = Table(
            {
                alias: np.asarray(evaluate(expr, table, shared_params))
                for expr, alias in pushed.project.exprs
            },
            Schema(
                [
                    (alias, infer_expr_type(expr, table.schema))
                    for expr, alias in pushed.project.exprs
                ]
            ),
        )
    return table


def _batch_tables_from_sets(
    pushed: PushedLineageQuery,
    catalog: Catalog,
    source: Table,
    rid_sets: Sequence[np.ndarray],
    domain: int,
    shared_params: Optional[dict],
    workers: int,
    counter: Optional[morsel.MorselCounter],
) -> List[Table]:
    """Set-based batch stage: one shared pass over the bindings' rid
    **union**, then one ``code_of_rid`` gather + subset grouping per
    binding (steps 2-4 of :func:`execute_pushed_batch`'s docstring)."""
    from .vector.kernels import subset_groups

    if len(rid_sets) > 1:
        flags = np.zeros(domain, dtype=bool)
        for rids in rid_sets:
            flags[rids] = True
        union = np.flatnonzero(flags)
    else:
        union = rid_sets[0]

    mask, codes, num_codes, key_by_code = _shared_batch_codes(
        pushed, source, union, shared_params, workers, counter
    )
    if mask is not None:
        union = union[mask]
    # rid -> shared code over the base-row domain; -1 marks rows outside
    # the (predicate-filtered) union.  Each binding then maps its rids to
    # codes in ONE gather — no per-binding selection vectors.
    code_of_rid = np.full(domain, -1, dtype=np.int64)
    code_of_rid[union] = codes
    schema = infer_schema(pushed.groupby, catalog)

    tables: List[Table] = []
    for rids in rid_sets:
        sub = code_of_rid[rids]
        if mask is not None:
            sub = sub[sub >= 0]
        group_codes, counts = subset_groups(sub, num_codes)
        tables.append(
            _batch_output_table(
                pushed, schema, group_codes, counts, key_by_code, shared_params
            )
        )
    return tables


#: Cap on ``num_bars * num_codes`` for the per-bar count / first-rid
#: matrices (int64 cells); beyond it the decomposed stage hands back to
#: the set-based stage rather than allocate tens of MB.
_BAR_MATRIX_MAX_CELLS = 1 << 21


def _batch_tables_by_bars(
    pushed: PushedLineageQuery,
    catalog: Catalog,
    decomposed,
    shared_params: Optional[dict],
    workers: int,
    counter: Optional[morsel.MorselCounter],
) -> Optional[List[Table]]:
    """Per-bar batch stage, for partition-shaped backward indexes.

    Each binding's rid set is the disjoint union of its bars' backward
    buckets, so per-binding aggregates decompose exactly:

    * ``counts`` — a binding's per-group count is the **sum** of its
      bars' per-group counts (disjointness: no row counted twice);
    * ``group order`` — :func:`~repro.exec.vector.kernels.factorize`
      numbers a binding's groups by first occurrence over its sorted
      rids, i.e. ascending *minimum member rid*; a binding's minimum rid
      for a group is the **min** over its bars' per-group minimum rids.

    So one pass over the concatenated (disjoint, union-sized) bar
    segments builds a ``counts`` matrix and a ``first-rid`` matrix of
    shape ``(num_bars, num_codes)``, and each binding's output reduces
    to ``counts[bars].sum(axis=0)`` / ``first[bars].min(axis=0)`` plus a
    ``num_codes``-sized argsort — independent of the binding's row
    count.  Returns ``None`` when the matrices would exceed
    :data:`_BAR_MATRIX_MAX_CELLS` (caller falls back to the set-based
    stage).
    """
    source, probes, bar_ids, bar_sets, _name, domain, _epoch = decomposed
    n_bars = int(bar_ids.shape[0])
    seg_offsets = np.zeros(n_bars + 1, dtype=np.int64)
    if n_bars:
        np.cumsum(
            np.fromiter(
                (s.shape[0] for s in bar_sets), dtype=np.int64, count=n_bars
            ),
            out=seg_offsets[1:],
        )
    rows = (
        np.concatenate(bar_sets) if n_bars else np.empty(0, dtype=np.int64)
    )

    mask, codes_kept, num_codes, key_by_code = _shared_batch_codes(
        pushed, source, rows, shared_params, workers, counter
    )
    if n_bars * max(num_codes, 1) > _BAR_MATRIX_MAX_CELLS:
        return None
    if mask is None:
        codes = codes_kept
    else:
        # Align codes with the full segment layout; -1 = filtered out.
        codes = np.full(rows.shape[0], -1, dtype=np.int64)
        codes[mask] = codes_kept

    counts_mat = np.zeros((n_bars, num_codes), dtype=np.int64)
    # Sentinel `domain` (> any rid) so min() over bars ignores absent
    # groups; a group is present for a binding iff its min stays < domain.
    first_mat = np.full((n_bars, num_codes), domain, dtype=np.int64)
    for j in range(n_bars):
        seg = codes[seg_offsets[j] : seg_offsets[j + 1]]
        seg_rids = rows[seg_offsets[j] : seg_offsets[j + 1]]
        if mask is not None:
            keep = seg >= 0
            seg = seg[keep]
            seg_rids = seg_rids[keep]
        if seg.size == 0:
            continue
        counts_mat[j] = np.bincount(seg, minlength=num_codes)
        # Bar buckets are sorted ascending; the reversed scatter leaves,
        # per code, the bar's smallest member rid (later writes win).
        first_mat[j][seg[::-1]] = seg_rids[::-1]

    schema = infer_schema(pushed.groupby, catalog)
    tables: List[Table] = []
    empty = np.empty(0, dtype=np.int64)
    for probe in probes:
        if probe.size and num_codes:
            idx = np.searchsorted(bar_ids, probe)
            counts_all = counts_mat[idx].sum(axis=0)
            first_all = first_mat[idx].min(axis=0)
            present = np.flatnonzero(first_all < domain)
            order = np.argsort(first_all[present], kind="stable")
            group_codes = present[order]
            counts = counts_all[group_codes]
        else:
            group_codes, counts = empty, empty
        tables.append(
            _batch_output_table(
                pushed, schema, group_codes, counts, key_by_code, shared_params
            )
        )
    return tables
