"""Late-materializing execution of lineage-scan stacks (rid domain).

Runs a :class:`~repro.plan.rewrite.PushedLineageQuery` — a
``[Project?][GroupBy?][Select*]`` stack over one
:class:`~repro.plan.logical.LineageScan` — without ever materializing
the traced subset:

1. resolve the traced rid array against the result registry
   (:func:`repro.exec.lineage_scan.resolve_scan_source`, so every
   schema-drift and shrink guard of the materializing path applies);
2. evaluate the pushed predicate on rid-gathered slices of **only the
   predicate's columns**, narrowing the rid array to survivors;
3. gather the columns the output actually needs — group keys and
   aggregate arguments, projection inputs, or (predicate-only stacks)
   the full source schema — at the *surviving* rids only, and feed the
   aggregation kernel that narrow slice table
   (:func:`~repro.exec.vector.groupby.execute_groupby`).

Both backends funnel through :func:`execute_pushed` — exactly like
:func:`~repro.exec.lineage_scan.execute_lineage_scan` — so the pushed
path is backend-agnostic by construction.  Output rows *and* captured
lineage are bit-identical to the materializing path: composing the
scan's rid-array lineage with a selection's local rid array *is* the
filtered rid array, so :func:`~repro.exec.lineage_scan.scan_node_lineage`
over the surviving rids equals the materialized path's
``compose_node(select, scan)``, and the aggregation stage composes
through the same :func:`~repro.lineage.composer.compose_node` call the
vector executor makes.  The property suite
(``tests/property/test_prop_late_mat.py``) asserts this equivalence
over random stacks on both backends.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..lineage.cache import LineageResolutionCache
from ..lineage.capture import CaptureConfig
from ..lineage.composer import NodeLineage, compose_node
from ..plan.rewrite import PushedLineageQuery
from ..plan.schema import infer_expr_type, infer_schema
from ..storage.catalog import Catalog
from ..storage.table import ColumnType, Schema, Table
from .lineage_scan import resolve_scan_source, scan_node_lineage


def _slice_names(source: Table, columns) -> List[str]:
    """The source columns to gather, in schema order (deterministic
    narrow schema), or one cheap stand-in column when the stage reads
    none (``SELECT COUNT(*)``, constant predicates) — a zero-column
    :class:`Table` cannot carry a row count."""
    names = [n for n in source.schema.names if n in columns]
    missing = sorted(set(columns) - set(source.schema.names))
    if missing:
        # Same canonical unknown-column error the materializing path's
        # operators would raise when evaluating over the full subset.
        source.column(missing[0])
    if names:
        return names
    for name, ctype in source.schema.fields:
        if ctype is not ColumnType.STR:
            return [name]
    return source.schema.names[:1]


def _gather(source: Table, rids: np.ndarray, names: Sequence[str]) -> Table:
    """Narrow gather: one fancy-index per listed column, nothing else."""
    return Table(
        {n: source.column(n)[rids] for n in names},
        Schema([(n, source.schema.type_of(n)) for n in names]),
    )


def execute_pushed(
    pushed: PushedLineageQuery,
    key: str,
    catalog: Catalog,
    results: Optional[Mapping[str, object]],
    config: CaptureConfig,
    params: Optional[dict],
    cache: Optional[LineageResolutionCache] = None,
) -> Tuple[Table, NodeLineage]:
    """Execute a pushed stack; returns ``(output table, node lineage)``."""
    from ..expr.ast import evaluate
    from .vector.groupby import execute_groupby

    scan = pushed.scan
    source, rids, source_name, domain, epoch = resolve_scan_source(
        scan, catalog, results, params, cache
    )

    if pushed.predicate is not None:
        pred_table = _gather(
            source, rids, _slice_names(source, pushed.predicate.columns())
        )
        mask = np.asarray(
            evaluate(pushed.predicate, pred_table, params), dtype=bool
        )
        rids = rids[mask]

    # Selection in the rid domain composes away: the scan's node lineage
    # over the *surviving* rids equals the materialized path's
    # scan-then-select composition (RidArray compose is a gather).
    node = scan_node_lineage(scan, key, rids, source_name, domain, config, epoch)

    if pushed.groupby is None and pushed.project is None:
        # Predicate-only stack: the output is the traced relation itself,
        # full schema, late-gathered at the surviving rids.
        return source.take(rids), node

    table = _gather(source, rids, _slice_names(source, pushed.columns))

    if pushed.groupby is not None:
        # The stack's static output schema (keys + aggregate types),
        # inferred against the original child chain like the
        # materializing executors do.
        schema = infer_schema(pushed.groupby, catalog)
        table, local_bw, local_fw = execute_groupby(
            table, pushed.groupby, config, params, schema
        )
        node = compose_node(table.num_rows, node, local_bw, local_fw)

    if pushed.project is not None:
        # Over the aggregate output when a GroupBy ran (e.g. dropping
        # hidden HAVING aggregates), else over the gathered slices.
        columns = {
            alias: np.asarray(evaluate(expr, table, params))
            for expr, alias in pushed.project.exprs
        }
        schema = Schema(
            [
                (alias, infer_expr_type(expr, table.schema))
                for expr, alias in pushed.project.exprs
            ]
        )
        table = Table(columns, schema)
        # Bag projection needs no capture: rids are unchanged (3.2.1).

    return table, node
