"""Sort / limit operator (engine completeness; see plan.logical.Sort).

Lineage through a sort is a permutation: the backward rid array holds, per
output position, the input row that landed there; the forward array is its
inverse (with NO_MATCH for rows cut off by LIMIT).  Both backends share
this implementation — sorting has no pipeline structure worth generating
code for, and sharing guarantees identical tie-breaking.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ...lineage.capture import CaptureConfig
from ...lineage.indexes import NO_MATCH, RidArray
from ...plan.logical import Sort
from ...storage.table import Table
from .kernels import _codes_for


def sort_order(table: Table, node: Sort) -> np.ndarray:
    """Stable row order for a Sort node (ties keep input order)."""
    n = table.num_rows
    if not node.keys or n == 0:
        order = np.arange(n, dtype=np.int64)
    else:
        # np.lexsort treats its *last* key as primary and is stable, so we
        # feed keys reversed; descending keys sort by negated dense codes
        # (codes order like the values for every supported type).
        sort_keys = []
        for name, descending in reversed(node.keys):
            codes, _ = _codes_for(table.column(name))
            sort_keys.append(-codes if descending else codes)
        order = np.lexsort(tuple(sort_keys)).astype(np.int64)
    if node.limit is not None:
        order = order[: node.limit]
    return order


def execute_sort(
    child: Table,
    node: Sort,
    config: CaptureConfig,
) -> Tuple[Table, Optional[RidArray], Optional[RidArray]]:
    """Apply the sort; returns ``(output, local backward, local forward)``."""
    order = sort_order(child, node)
    output = child.take(order)
    if not config.enabled:
        return output, None, None
    local_backward = RidArray(order.copy()) if config.backward else None
    local_forward = None
    if config.forward:
        forward = np.full(child.num_rows, NO_MATCH, dtype=np.int64)
        forward[order] = np.arange(order.shape[0], dtype=np.int64)
        local_forward = RidArray(forward)
    return output, local_backward, local_forward
