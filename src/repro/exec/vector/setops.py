"""Instrumented set/bag union, intersection, and difference (Appendix F).

All hash-based set operations share one skeleton: build a hash table over
the union of both inputs' rows (vectorized as a joint ``factorize``), track
which rids of each side landed in each hash entry (``a_rids`` / ``b_rids``
in the paper's listings), and emit output entries in first-occurrence
order.  Lineage mirrors the paper:

===============  =======================  =========================
operation        backward                 forward
===============  =======================  =========================
union (set)      rid index per side       rid array per side
union (bag)      rid array per side*      rid array per side
intersect (set)  rid index per side       rid array per side
intersect (bag)  rid array per side       rid index per side
except (set)     rid index for A only     rid array for A only
except (bag)     rid array for A only     rid array for A only
===============  =======================  =========================

(*) bag union's backward arrays carry NO_MATCH for rows of the other side.

Set difference deliberately captures nothing for ``B``: every output
depends on *all* of B (paper F.5), so Smoke answers backward queries into B
with a scan instead of materializing the full bipartite blow-up.

Bag intersection follows the paper's product semantics (``a_matches ×
b_matches`` copies per value, Appendix F.4) rather than SQL's
``INTERSECT ALL`` min-multiplicity; tests pin this behaviour.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ...errors import PlanError
from ...lineage.capture import CaptureConfig, IndexOrThunk
from ...lineage.indexes import NO_MATCH, RidArray, RidIndex, invert_rid_array
from ...storage.table import Table, concat_tables
from .kernels import factorize

#: (left backward, left forward, right backward, right forward)
SetOpLocals = Tuple[
    Optional[IndexOrThunk],
    Optional[IndexOrThunk],
    Optional[IndexOrThunk],
    Optional[IndexOrThunk],
]


def _row_ids(left: Table, right: Table) -> Tuple[np.ndarray, np.ndarray, int]:
    """Dense value ids over the union of both inputs' rows."""
    n_left = left.num_rows
    arrays = []
    for (name_l, _), (name_r, _) in zip(left.schema.fields, right.schema.fields, strict=True):
        l, r = left.column(name_l), right.column(name_r)
        if l.dtype == object or r.dtype == object:
            arrays.append(np.concatenate([l.astype(object), r.astype(object)]))
        else:
            arrays.append(np.concatenate([l, r]))
    total = n_left + right.num_rows
    if total == 0:
        return np.empty(0, np.int64), np.empty(0, np.int64), 0
    ids, num_values, _ = factorize(arrays)
    return ids[:n_left], ids[n_left:], num_values


def execute_setop(  # noqa: D103 - dispatch; semantics documented above
    op: str,
    all_: bool,
    left: Table,
    right: Table,
    config: CaptureConfig,
) -> Tuple[Table, SetOpLocals]:
    if op == "union":
        return (_bag_union if all_ else _set_union)(left, right, config)
    if op == "intersect":
        return (_bag_intersect if all_ else _set_intersect)(left, right, config)
    if op == "except":
        return (_bag_except if all_ else _set_except)(left, right, config)
    raise PlanError(f"unknown set operation {op!r}")


def _first_occurrence_entries(
    left_ids: np.ndarray, right_ids: np.ndarray, num_values: int
) -> np.ndarray:
    """Value ids ordered by first occurrence across A-then-B (hash-table
    scan order in the paper's listings)."""
    combined = np.concatenate([left_ids, right_ids])
    if combined.size == 0:
        return np.empty(0, dtype=np.int64)
    _, first_idx = np.unique(combined, return_index=True)
    order = np.argsort(first_idx, kind="stable")
    values = np.unique(combined)
    return values[order]


def _side_locals(
    side_ids: np.ndarray,
    out_of_value: np.ndarray,
    num_out: int,
    config: CaptureConfig,
) -> Tuple[Optional[IndexOrThunk], Optional[IndexOrThunk]]:
    """Backward rid index + forward rid array for one input side, given
    ``out_of_value``: value id → output rid (or NO_MATCH)."""
    forward_values = (
        out_of_value[side_ids] if side_ids.size else np.empty(0, np.int64)
    )
    backward = None
    forward = None
    if config.backward:
        backward = invert_rid_array(RidArray(forward_values), num_out)
    if config.forward:
        forward = RidArray(forward_values.copy())
    return backward, forward


def _set_union(left: Table, right: Table, config: CaptureConfig):
    left_ids, right_ids, num_values = _row_ids(left, right)
    entries = _first_occurrence_entries(left_ids, right_ids, num_values)
    out_of_value = np.full(num_values, NO_MATCH, dtype=np.int64)
    out_of_value[entries] = np.arange(entries.shape[0], dtype=np.int64)
    combined = concat_tables([left, right.rename(dict(zip(right.schema.names, left.schema.names, strict=True)))])
    # Representative row per output entry: first occurrence in A-then-B.
    all_ids = np.concatenate([left_ids, right_ids])
    _, first_idx = np.unique(all_ids, return_index=True)
    rep_of_value = np.empty(num_values, dtype=np.int64)
    rep_of_value[np.unique(all_ids)] = first_idx
    output = combined.take(rep_of_value[entries])
    if not config.enabled:
        return output, (None, None, None, None)
    n_out = entries.shape[0]
    l_bw, l_fw = _side_locals(left_ids, out_of_value, n_out, config)
    r_bw, r_fw = _side_locals(right_ids, out_of_value, n_out, config)
    return output, (l_bw, l_fw, r_bw, r_fw)


def _bag_union(left: Table, right: Table, config: CaptureConfig):
    output = concat_tables(
        [left, right.rename(dict(zip(right.schema.names, left.schema.names, strict=True)))]
    )
    if not config.enabled:
        return output, (None, None, None, None)
    n_left, n_right = left.num_rows, right.num_rows
    l_bw = r_bw = l_fw = r_fw = None
    if config.backward:
        left_vals = np.concatenate(
            [np.arange(n_left, dtype=np.int64), np.full(n_right, NO_MATCH, np.int64)]
        )
        right_vals = np.concatenate(
            [np.full(n_left, NO_MATCH, np.int64), np.arange(n_right, dtype=np.int64)]
        )
        l_bw, r_bw = RidArray(left_vals), RidArray(right_vals)
    if config.forward:
        l_fw = RidArray(np.arange(n_left, dtype=np.int64))
        r_fw = RidArray(np.arange(n_right, dtype=np.int64) + n_left)
    return output, (l_bw, l_fw, r_bw, r_fw)


def _set_intersect(left: Table, right: Table, config: CaptureConfig):
    left_ids, right_ids, num_values = _row_ids(left, right)
    in_left = np.zeros(num_values, dtype=bool)
    in_left[left_ids] = True
    in_right = np.zeros(num_values, dtype=bool)
    in_right[right_ids] = True
    both = in_left & in_right
    # Entries in A-first-occurrence order (hash table is built on A).
    a_entries = _first_occurrence_entries(left_ids, np.empty(0, np.int64), num_values)
    entries = a_entries[both[a_entries]]
    out_of_value = np.full(num_values, NO_MATCH, dtype=np.int64)
    out_of_value[entries] = np.arange(entries.shape[0], dtype=np.int64)
    first_of_value = np.full(num_values, -1, dtype=np.int64)
    uniq, first_idx = np.unique(left_ids, return_index=True)
    first_of_value[uniq] = first_idx
    output = left.take(first_of_value[entries])
    if not config.enabled:
        return output, (None, None, None, None)
    n_out = entries.shape[0]
    l_bw, l_fw = _side_locals(left_ids, out_of_value, n_out, config)
    r_bw, r_fw = _side_locals(right_ids, out_of_value, n_out, config)
    return output, (l_bw, l_fw, r_bw, r_fw)


def _bag_intersect(left: Table, right: Table, config: CaptureConfig):
    """Product-multiplicity bag intersection (paper Appendix F.4)."""
    left_ids, right_ids, num_values = _row_ids(left, right)
    a_buckets = RidIndex.from_group_ids(left_ids, num_values) if left_ids.size else RidIndex.empty(num_values)
    b_buckets = RidIndex.from_group_ids(right_ids, num_values) if right_ids.size else RidIndex.empty(num_values)
    a_counts, b_counts = a_buckets.counts(), b_buckets.counts()
    entries = _first_occurrence_entries(left_ids, np.empty(0, np.int64), num_values)
    entries = entries[(a_counts[entries] > 0) & (b_counts[entries] > 0)]
    out_a = []
    out_b = []
    for v in entries:
        a_rids = a_buckets.lookup(int(v))
        b_rids = b_buckets.lookup(int(v))
        out_a.append(np.repeat(a_rids, b_rids.shape[0]))
        out_b.append(np.tile(b_rids, a_rids.shape[0]))
    out_a = np.concatenate(out_a) if out_a else np.empty(0, np.int64)
    out_b = np.concatenate(out_b) if out_b else np.empty(0, np.int64)
    output = left.take(out_a)
    if not config.enabled:
        return output, (None, None, None, None)
    n_out = out_a.shape[0]
    l_bw = RidArray(out_a.copy()) if config.backward else None
    r_bw = RidArray(out_b.copy()) if config.backward else None
    l_fw = invert_rid_array(RidArray(out_a), left.num_rows) if config.forward else None
    r_fw = invert_rid_array(RidArray(out_b), right.num_rows) if config.forward else None
    return output, (l_bw, l_fw, r_bw, r_fw)


def _set_except(left: Table, right: Table, config: CaptureConfig):
    left_ids, right_ids, num_values = _row_ids(left, right)
    in_right = np.zeros(num_values, dtype=bool)
    in_right[right_ids] = True
    a_entries = _first_occurrence_entries(left_ids, np.empty(0, np.int64), num_values)
    entries = a_entries[~in_right[a_entries]]
    out_of_value = np.full(num_values, NO_MATCH, dtype=np.int64)
    out_of_value[entries] = np.arange(entries.shape[0], dtype=np.int64)
    first_of_value = np.full(num_values, -1, dtype=np.int64)
    uniq, first_idx = np.unique(left_ids, return_index=True)
    first_of_value[uniq] = first_idx
    output = left.take(first_of_value[entries])
    if not config.enabled:
        return output, (None, None, None, None)
    l_bw, l_fw = _side_locals(left_ids, out_of_value, entries.shape[0], config)
    # No lineage for B: each output depends on all of B (paper F.5).
    return output, (l_bw, l_fw, None, None)


def _bag_except(left: Table, right: Table, config: CaptureConfig):
    """Bag difference with multiplicity ``max(count_A - count_B, 0)``;
    each output copy maps to one of the first surviving A rids."""
    left_ids, right_ids, num_values = _row_ids(left, right)
    a_buckets = RidIndex.from_group_ids(left_ids, num_values) if left_ids.size else RidIndex.empty(num_values)
    b_counts = (
        np.bincount(right_ids, minlength=num_values)
        if right_ids.size
        else np.zeros(num_values, dtype=np.int64)
    )
    entries = _first_occurrence_entries(left_ids, np.empty(0, np.int64), num_values)
    out_a = []
    for v in entries:
        a_rids = a_buckets.lookup(int(v))
        keep = a_rids.shape[0] - int(b_counts[v])
        if keep > 0:
            out_a.append(a_rids[:keep])
    out_a = np.concatenate(out_a) if out_a else np.empty(0, np.int64)
    output = left.take(out_a)
    if not config.enabled:
        return output, (None, None, None, None)
    l_bw = RidArray(out_a.copy()) if config.backward else None
    l_fw = invert_rid_array(RidArray(out_a), left.num_rows) if config.forward else None
    return output, (l_bw, l_fw, None, None)
