"""Instrumented hash joins (paper Section 3.2.4, Figure 4 c/d).

The build phase hashes the left relation; the probe phase streams the right
relation and emits matches in right-row order (so outputs for one probe row
are contiguous — the fact Defer exploits).  Lineage:

* backward: two rid *arrays* (output → left rid, output → right rid); these
  are byproducts of match computation,
* forward: left side is a rid *index* (a build row can join many probe
  rows); right side is a rid index in general, but for pk-fk joins each
  right (foreign key) row produces at most one output, so it collapses to a
  rid array and backward indexes are pre-allocatable — which is why Inject
  and Defer coincide for pk-fk joins (Section 3.2.4).

For m:n joins the expensive structure is the left forward index: under
Inject its buckets grow 10→1.5x while probing (resize-heavy under skew);
Defer counts matches during the probe and allocates exactly afterwards
(Smoke-D), or defers just the forward index (Smoke-D-DeferForw).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...errors import PlanError
from ...lineage.capture import CaptureConfig, CaptureMode, IndexOrThunk
from ...lineage.indexes import (
    NO_MATCH,
    GrowableRidIndex,
    RidArray,
    RidIndex,
    invert_rid_array,
)
from ...storage.table import Table
from .. import morsel
from .kernels import chunk_ranges, factorize


class JoinMatches:
    """Raw match arrays produced by the probe phase.

    ``out_left[k]`` / ``out_right[k]`` are the input rids joined into
    output row ``k``; outputs are ordered by probe (right) row.
    """

    __slots__ = ("out_left", "out_right", "num_left", "num_right")

    def __init__(self, out_left, out_right, num_left: int, num_right: int):
        self.out_left = out_left
        self.out_right = out_right
        self.num_left = num_left
        self.num_right = num_right

    @property
    def num_out(self) -> int:
        """Number of join output rows."""
        return int(self.out_left.shape[0])


def _key_ids(
    left_cols: Sequence[np.ndarray], right_cols: Sequence[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Factorize join keys over the union of both sides' values."""
    n_left = left_cols[0].shape[0]
    combined = []
    for l, r in zip(left_cols, right_cols, strict=True):
        if l.dtype == object or r.dtype == object:
            combined.append(np.concatenate([l.astype(object), r.astype(object)]))
        else:
            combined.append(np.concatenate([l, r]))
    if n_left + right_cols[0].shape[0] == 0:
        return np.empty(0, np.int64), np.empty(0, np.int64), 0
    ids, num_keys, _ = factorize(combined)
    return ids[:n_left], ids[n_left:], num_keys


def probe_pkfk(
    left_ids: np.ndarray,
    right_ids: np.ndarray,
    num_keys: int,
    num_left: int,
    workers: int = 1,
    counter: Optional[morsel.MorselCounter] = None,
) -> JoinMatches:
    """Probe for a pk-fk join (left keys unique).  Raises if they are not.

    The probe side is morsel-parallel: each morsel scans its slice of
    the (shared, read-only) position array and emits matches with probe
    rows offset by the morsel base; concatenating in morsel order *is*
    the canonical right-row-major order, so no sort is needed and the
    output is bit-identical to serial.
    """
    position = np.full(num_keys, NO_MATCH, dtype=np.int64)
    position[left_ids] = np.arange(num_left, dtype=np.int64)
    if np.unique(left_ids).shape[0] != num_left:
        raise PlanError("pk-fk join requested but left keys are not unique")
    ranges = morsel.morsel_ranges(right_ids.shape[0]) if workers > 1 else []
    if len(ranges) > 1:

        def probe_range(lo: int, hi: int) -> Tuple[np.ndarray, np.ndarray]:
            matches = position[right_ids[lo:hi]]
            mask = matches != NO_MATCH
            return matches[mask], np.nonzero(mask)[0].astype(np.int64) + lo

        parts = morsel.run_tasks(
            [lambda lo=lo, hi=hi: probe_range(lo, hi) for lo, hi in ranges],
            workers,
            counter,
        )
        out_left = np.concatenate([p[0] for p in parts])
        out_right = np.concatenate([p[1] for p in parts])
        return JoinMatches(out_left, out_right, num_left, right_ids.shape[0])
    matches = position[right_ids] if right_ids.size else np.empty(0, np.int64)
    mask = matches != NO_MATCH
    out_left = matches[mask]
    out_right = np.nonzero(mask)[0].astype(np.int64)
    return JoinMatches(out_left, out_right, num_left, right_ids.shape[0])


def probe_mn(
    left_ids: np.ndarray,
    right_ids: np.ndarray,
    num_keys: int,
    num_left: int,
    workers: int = 1,
    counter: Optional[morsel.MorselCounter] = None,
) -> JoinMatches:
    """Probe for a general m:n join; emits every (left, right) key match.

    Build stays serial (one CSR counting sort); the probe side splits
    into morsels that look up their bucket slices independently.  Bucket
    entries are ascending within each probe row and morsels concatenate
    in probe-row order, so the merged output is the canonical order with
    no re-sort.
    """
    if num_keys == 0:
        empty = np.empty(0, dtype=np.int64)
        return JoinMatches(empty, empty, num_left, right_ids.shape[0])
    buckets = RidIndex.from_group_ids(left_ids, num_keys)
    ranges = morsel.morsel_ranges(right_ids.shape[0]) if workers > 1 else []
    if len(ranges) > 1:
        bucket_counts = buckets.counts()

        def probe_range(lo: int, hi: int) -> Tuple[np.ndarray, np.ndarray]:
            ids = right_ids[lo:hi]
            out_right = np.repeat(np.arange(lo, hi, dtype=np.int64), bucket_counts[ids])
            return buckets.lookup_many(ids), out_right

        parts = morsel.run_tasks(
            [lambda lo=lo, hi=hi: probe_range(lo, hi) for lo, hi in ranges],
            workers,
            counter,
        )
        out_left = np.concatenate([p[0] for p in parts])
        out_right = np.concatenate([p[1] for p in parts])
        return JoinMatches(out_left, out_right, num_left, right_ids.shape[0])
    counts = buckets.counts()[right_ids] if right_ids.size else np.empty(0, np.int64)
    out_right = np.repeat(
        np.arange(right_ids.shape[0], dtype=np.int64), counts
    )
    out_left = buckets.lookup_many(right_ids) if right_ids.size else np.empty(0, np.int64)
    return JoinMatches(out_left, out_right, num_left, right_ids.shape[0])


def compute_matches(  # the single entry point the executor and benches use
    left: Table,
    right: Table,
    left_keys: Sequence[str],
    right_keys: Sequence[str],
    pkfk: bool,
    workers: int = 1,
    counter: Optional[morsel.MorselCounter] = None,
) -> JoinMatches:
    return compute_matches_narrow(
        [left.column(k) for k in left_keys],
        [right.column(k) for k in right_keys],
        pkfk,
        workers=workers,
        counter=counter,
    )


def compute_matches_narrow(
    left_key_cols: Sequence[np.ndarray],
    right_key_cols: Sequence[np.ndarray],
    pkfk: bool,
    workers: int = 1,
    counter: Optional[morsel.MorselCounter] = None,
) -> JoinMatches:
    """Probe with pre-gathered key columns only — the late-materializing
    join path (:mod:`repro.exec.late_mat`) hands in one rid-gathered
    array per join key instead of a full table, so the probe never sees
    (or forces materialization of) any non-key column."""
    left_ids, right_ids, num_keys = _key_ids(left_key_cols, right_key_cols)
    num_left = int(left_key_cols[0].shape[0])
    if pkfk:
        return probe_pkfk(left_ids, right_ids, num_keys, num_left, workers, counter)
    return probe_mn(left_ids, right_ids, num_keys, num_left, workers, counter)


def compute_matches_oriented(
    left_key_cols: Sequence[np.ndarray],
    right_key_cols: Sequence[np.ndarray],
    build_left: bool,
    build_pkfk: bool,
    workers: int = 1,
    counter: Optional[morsel.MorselCounter] = None,
) -> JoinMatches:
    """Probe with an *explicit* build side, emitting matches in the
    canonical build-left order regardless of which side actually built.

    The late-materializing chain executor picks its build side per hop
    from cardinality statistics
    (:func:`repro.substrate.stats.choose_build_side`); output order must
    nevertheless stay bit-identical to the canonical probe — the right
    (probe) side row-major, bucket entries ascending — because the
    materializing fallback, lineage locals
    (:func:`contiguous_forward_right` relies on that contiguity), and
    the plan-equivalence harnesses all assume it.  A swapped probe emits
    left-row-major order, so its matches are restored with one stable
    sort by right row: within one right row, left matches then appear in
    input order, i.e. ascending — exactly the canonical bucket order.

    ``build_pkfk=True`` uses the pk-fk probe (position array instead of
    CSR buckets, paper Section 3.2.4) and requires the build side's keys
    to be unique — callers assert that via plan flags or column stats.
    """
    left_ids, right_ids, num_keys = _key_ids(left_key_cols, right_key_cols)
    num_left = int(left_key_cols[0].shape[0])
    num_right = int(right_key_cols[0].shape[0])
    if build_left:
        if build_pkfk:
            return probe_pkfk(left_ids, right_ids, num_keys, num_left, workers, counter)
        return probe_mn(left_ids, right_ids, num_keys, num_left, workers, counter)
    probe = probe_pkfk if build_pkfk else probe_mn
    swapped = probe(right_ids, left_ids, num_keys, num_right, workers, counter)
    out_left = swapped.out_right  # probe side rows == canonical left
    out_right = swapped.out_left  # build side rows == canonical right
    order = np.argsort(out_right, kind="stable")
    return JoinMatches(out_left[order], out_right[order], num_left, num_right)


def inject_forward_index(
    targets: np.ndarray,
    num_keys: int,
    chunk_size: int,
    capacities: Optional[np.ndarray] = None,
) -> Tuple[RidIndex, int]:
    """Growable-bucket construction of ``input rid -> output rids``.

    ``targets[k]`` is the input rid of output ``k``.  This is the
    resize-prone structure the m:n experiments stress; ``capacities``
    reproduces the Smoke-I-TC variant.
    """
    growable = GrowableRidIndex(num_keys, capacities)
    for lo, hi in chunk_ranges(targets.shape[0], chunk_size):
        chunk = targets[lo:hi]
        order = np.argsort(chunk, kind="stable")
        sorted_ids = chunk[order]
        boundaries = np.nonzero(np.diff(sorted_ids))[0] + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [sorted_ids.shape[0]]))
        for s, e in zip(starts, ends, strict=True):
            if s == e:
                continue
            growable.extend(int(sorted_ids[s]), order[s:e] + lo)
    return growable.finalize(), growable.total_resizes


def contiguous_forward_right(matches: JoinMatches) -> RidIndex:
    """Forward index for the probe side: outputs per right row are
    contiguous, so the CSR materializes without any partitioning work."""
    counts = np.bincount(matches.out_right, minlength=matches.num_right)
    offsets = np.empty(matches.num_right + 1, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(counts, out=offsets[1:])
    return RidIndex(offsets, np.arange(matches.num_out, dtype=np.int64))


def join_lineage_locals(
    matches: JoinMatches,
    config: CaptureConfig,
    pkfk: bool,
    label: str = "join",
) -> Tuple[
    Optional[IndexOrThunk],  # left backward (out -> left rid)
    Optional[IndexOrThunk],  # left forward (left rid -> out rids)
    Optional[IndexOrThunk],  # right backward (out -> right rid)
    Optional[IndexOrThunk],  # right forward
]:
    """Build the four local lineage indexes for a join under ``config``."""
    if not config.enabled:
        return None, None, None, None

    left_bw: Optional[IndexOrThunk] = None
    right_bw: Optional[IndexOrThunk] = None
    left_fw: Optional[IndexOrThunk] = None
    right_fw: Optional[IndexOrThunk] = None

    if config.backward:
        left_bw = RidArray(matches.out_left.copy())
        right_bw = RidArray(matches.out_right.copy())

    if config.forward:
        # Right side: for pk-fk each right row has <= 1 output (rid array);
        # general case uses the contiguity of probe output (cheap CSR).
        if pkfk:
            values = np.full(matches.num_right, NO_MATCH, dtype=np.int64)
            values[matches.out_right] = np.arange(matches.num_out, dtype=np.int64)
            right_fw = RidArray(values)
        else:
            right_fw = contiguous_forward_right(matches)

        capacities = None
        if config.hints is not None:
            capacities = config.hints.group_count_for(label)

        defer_left = (
            config.mode is CaptureMode.DEFER or config.defer_forward_only
        ) and not pkfk  # pk-fk: Inject == Defer (Section 3.2.4)
        if defer_left:
            out_left, num_left = matches.out_left, matches.num_left

            def left_thunk(out_left=out_left, num_left=num_left) -> RidIndex:
                return invert_rid_array(RidArray(out_left), num_left)

            left_fw = left_thunk
        elif config.emulate_tuple_appends:
            # Append-per-match construction with the 10 / 1.5x growth
            # policy: exposes the rid-array resizing behaviour the m:n
            # experiments analyze (Smoke-I vs Smoke-I-TC, Figures 6-7).
            index, _resizes = inject_forward_index(
                matches.out_left, matches.num_left, config.chunk_size, capacities
            )
            left_fw = index
        else:
            # Probe-phase cardinalities are known by the time the index
            # materializes, so Inject allocates exactly (vectorized
            # counting sort) — the engine-level analogue of Smoke-I-TC.
            left_fw = invert_rid_array(
                RidArray(matches.out_left), matches.num_left
            )

    return left_bw, left_fw, right_bw, right_fw


def materialize_join_output(
    left: Table,
    right: Table,
    matches: JoinMatches,
    output_names: List[Tuple[str, str]],
) -> Table:
    """Gather the output table.  ``output_names`` pairs (output name,
    source column name) with left columns first, as produced by
    :func:`repro.plan.schema.join_output_fields`."""
    n_left_cols = len(left.schema.names)
    columns: Dict[str, np.ndarray] = {}
    for i, (out_name, src_name) in enumerate(output_names):
        if i < n_left_cols:
            columns[out_name] = left.column(src_name)[matches.out_left]
        else:
            columns[out_name] = right.column(src_name)[matches.out_right]
    return Table(columns)
