"""The vectorized execution engine with integrated lineage capture.

``VectorExecutor.execute`` walks a logical plan bottom-up.  Every operator
computes its output *and* its local lineage in the same pass (tight
integration, principle P1) and immediately rewrites that local lineage in
terms of base-relation rids via :mod:`repro.lineage.composer` (Section 3.3
propagation) — intermediate indexes are never retained.

The result is an :class:`ExecResult`: the output table, a
:class:`~repro.lineage.capture.QueryLineage` handle (unless capture was
off), and a timing breakdown separating base-query time from deferred
finalization time.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ...errors import LineageError, PlanError
from ...lineage.capture import (
    CaptureConfig,
    QueryLineage,
    unmatched_capture_relations,
)
from ...lineage.composer import (
    NodeLineage,
    compose_node,
    drop_setop_right_indexes,
    merge_binary,
)
from ...plan.logical import (
    CrossProduct,
    GroupBy,
    HashJoin,
    LineageScan,
    LogicalPlan,
    Project,
    Scan,
    Select,
    SetOp,
    Sort,
    ThetaJoin,
    assign_source_keys,
    source_leaves,
)
from .. import morsel
from ..late_mat import PushedStats, execute_pushed, fold_push_stats
from ..lineage_scan import execute_lineage_scan
from ..timings import (
    EXECUTE,
    LATE_MAT_DISTINCTS,
    LATE_MAT_JOINS,
    LATE_MAT_SUBTREES,
    MORSEL_TASKS,
)
from ...lineage.cache import LineageResolutionCache
from ...plan.rewrite import RewriteIndex, match_late_materialization
from ...plan.schema import infer_schema, join_output_fields
from ...storage.catalog import Catalog
from ...storage.table import Table
from .groupby import execute_distinct, execute_groupby
from .join import compute_matches, join_lineage_locals, materialize_join_output
from .nested import cross_product_lineage, theta_lineage_locals, theta_matches
from .select import execute_select
from .setops import execute_setop
from .sort import execute_sort


@dataclass
class ExecResult:
    """Output of one instrumented query execution."""

    table: Table
    lineage: Optional[QueryLineage]
    timings: Dict[str, float] = field(default_factory=dict)

    @property
    def execute_seconds(self) -> float:
        """Wall time of the (instrumented) base query."""
        return self.timings.get(EXECUTE, 0.0)

    @property
    def finalize_seconds(self) -> float:
        """Deferred-capture time spent so far (Defer mode only)."""
        return self.lineage.finalize_seconds if self.lineage else 0.0

    @property
    def total_seconds(self) -> float:
        """Base query + (so far) finalized deferred capture."""
        return self.execute_seconds + self.finalize_seconds


@dataclass
class _RunState:
    """Per-execution traversal state: the pre-order occurrence-key
    cursor, whether the late-materialization rewrite is enabled for this
    run, and how many subtrees it pushed.  Local to one ``execute`` call
    so runs can never clobber each other's settings (the compiled
    backend's ``_ExecState`` plays the same role).

    ``rewrites`` is a prepared statement's precomputed
    :class:`~repro.plan.rewrite.RewriteIndex` (``None`` = match live per
    node); ``cache`` is the shared lineage rid-resolution cache handle
    threaded down to the lineage-scan paths.
    """

    late_mat: bool = True
    pushed_subtrees: int = 0
    pushed_joins: int = 0
    pushed_distincts: int = 0
    scan_cursor: int = 0
    rewrites: Optional[RewriteIndex] = None
    cache: Optional[LineageResolutionCache] = None
    push_stats: PushedStats = field(default_factory=PushedStats)
    workers: int = 1
    morsel_counter: Optional[morsel.MorselCounter] = None

    def next_key(self, scan_keys: List[str]) -> str:
        key = scan_keys[self.scan_cursor]
        self.scan_cursor += 1
        return key

    def match(self, plan: LogicalPlan):
        """The late-materialization decision for ``plan`` — from the
        precomputed index when one was prepared, else matched live."""
        if not self.late_mat:
            return None
        if self.rewrites is not None:
            return self.rewrites.lookup(plan)
        return match_late_materialization(plan)


class VectorExecutor:
    """Executes logical plans over a catalog with configurable capture.

    ``results`` is the (live) registry of named prior query results that
    :class:`~repro.plan.logical.LineageScan` leaves resolve against.
    """

    def __init__(self, catalog: Catalog, results=None):
        self.catalog = catalog
        self.results = results

    # -- public API --------------------------------------------------------------

    def execute(
        self,
        plan: LogicalPlan,
        capture: Optional[CaptureConfig] = None,
        params: Optional[dict] = None,
        late_materialize: bool = True,
        rewrites: Optional[RewriteIndex] = None,
        lineage_cache: Optional[LineageResolutionCache] = None,
        parallel: Optional[int] = None,
    ) -> ExecResult:
        """Run ``plan``.  ``rewrites`` / ``lineage_cache`` are the
        prepared-statement fast-path handles: a precomputed
        late-materialization index (skips per-run structural matching)
        and a shared rid-resolution cache (skips repeated ``Lb``/``Lf``
        resolution across a session's statements).  ``parallel`` is the
        morsel worker target (``None`` = ``REPRO_PARALLEL`` env or
        serial); output is bit-identical at any worker count."""
        config = capture or CaptureConfig.none()
        workers = morsel.resolve_parallel(parallel)
        scan_keys = self._assign_scan_keys(plan)
        # Validate pruning entries up front: a misspelled `relations`
        # entry must not discard a finished (possibly expensive) run.
        check_relation_pruning(config, plan, scan_keys, self.catalog, self.results)
        state = _RunState(
            late_mat=bool(late_materialize),
            rewrites=rewrites,
            cache=lineage_cache,
            workers=workers,
            morsel_counter=morsel.MorselCounter() if workers > 1 else None,
        )
        start = time.perf_counter()
        table, node = self._run(plan, config, params, scan_keys, state)
        elapsed = time.perf_counter() - start
        lineage = node.to_query_lineage() if config.enabled else None
        timings = {EXECUTE: elapsed}
        if state.pushed_subtrees:
            timings[LATE_MAT_SUBTREES] = float(state.pushed_subtrees)
        if state.pushed_joins:
            timings[LATE_MAT_JOINS] = float(state.pushed_joins)
        if state.pushed_distincts:
            timings[LATE_MAT_DISTINCTS] = float(state.pushed_distincts)
        fold_push_stats(timings, state.push_stats)
        if state.morsel_counter is not None and state.morsel_counter.tasks:
            timings[MORSEL_TASKS] = float(state.morsel_counter.tasks)
        return ExecResult(table, lineage, timings)

    # -- helpers -------------------------------------------------------------------

    def _assign_scan_keys(self, plan: LogicalPlan) -> List[str]:
        """Occurrence key per source leaf (Scan / LineageScan) in
        pre-order; see :func:`repro.plan.logical.assign_source_keys`."""
        return assign_source_keys(plan)

    def _run(
        self,
        plan: LogicalPlan,
        config: CaptureConfig,
        params: Optional[dict],
        scan_keys: List[str],
        state: "_RunState",
    ) -> Tuple[Table, NodeLineage]:
        # Late materialization: a Select/Project/GroupBy tree over a
        # lineage scan — or over a hash join with lineage-backed inputs —
        # runs in the rid domain instead of scanning a materialized
        # subset.  Occurrence keys are consumed per lineage leaf through
        # next_key (pre-order), and a join's non-lineage input runs
        # through this very recursion via run_child.
        pushed = state.match(plan)
        if pushed is not None:
            state.pushed_subtrees += 1
            if pushed.has_join:
                state.pushed_joins += 1
            if pushed.has_distinct:
                state.pushed_distincts += 1
            return execute_pushed(
                pushed, self.catalog, self.results, config, params,
                next_key=lambda: state.next_key(scan_keys),
                run_child=lambda p: self._run(p, config, params, scan_keys, state),
                cache=state.cache,
                stats=state.push_stats,
                workers=state.workers,
                counter=state.morsel_counter,
            )

        if isinstance(plan, Scan):
            key = state.next_key(scan_keys)
            table, epoch = self.catalog.get_versioned(plan.table)
            captured = config.captures_relation(key, plan.table, plan.alias)
            node = NodeLineage.for_scan(
                key,
                plan.table,
                table.num_rows,
                backward=config.backward and captured,
                forward=config.forward and captured,
                alias=plan.alias,
                epoch=epoch,
            )
            return table, node

        if isinstance(plan, LineageScan):
            key = state.next_key(scan_keys)
            return execute_lineage_scan(
                plan, key, self.catalog, self.results, config, params,
                cache=state.cache,
            )

        if isinstance(plan, Select):
            child_table, child_node = self._run(
                plan.child, config, params, scan_keys, state
            )
            out, local_bw, local_fw = execute_select(
                child_table, plan.predicate, config, params
            )
            node = compose_node(out.num_rows, child_node, local_bw, local_fw)
            return out, node

        if isinstance(plan, Sort):
            child_table, child_node = self._run(
                plan.child, config, params, scan_keys, state
            )
            out, local_bw, local_fw = execute_sort(child_table, plan, config)
            node = compose_node(out.num_rows, child_node, local_bw, local_fw)
            return out, node

        if isinstance(plan, Project):
            child_table, child_node = self._run(
                plan.child, config, params, scan_keys, state
            )
            return self._project(plan, child_table, child_node, config, params)

        if isinstance(plan, GroupBy):
            child_table, child_node = self._run(
                plan.child, config, params, scan_keys, state
            )
            schema = infer_schema(plan, self.catalog)
            out, local_bw, local_fw = execute_groupby(
                child_table, plan, config, params, schema,
                workers=state.workers, counter=state.morsel_counter,
            )
            node = compose_node(out.num_rows, child_node, local_bw, local_fw)
            return out, node

        if isinstance(plan, HashJoin):
            left_table, left_node = self._run(
                plan.left, config, params, scan_keys, state
            )
            right_table, right_node = self._run(
                plan.right, config, params, scan_keys, state
            )
            matches = compute_matches(
                left_table, right_table, plan.left_keys, plan.right_keys, plan.pkfk,
                workers=state.workers, counter=state.morsel_counter,
            )
            fields = join_output_fields(left_table.schema, right_table.schema)
            src_names = left_table.schema.names + right_table.schema.names
            out = materialize_join_output(
                left_table,
                right_table,
                matches,
                [(n, s) for (n, _, _), s in zip(fields, src_names, strict=True)],
            )
            l_bw, l_fw, r_bw, r_fw = join_lineage_locals(matches, config, plan.pkfk)
            node = merge_binary(
                out.num_rows, left_node, right_node, l_bw, l_fw, r_bw, r_fw
            )
            return out, node

        if isinstance(plan, ThetaJoin):
            left_table, left_node = self._run(
                plan.left, config, params, scan_keys, state
            )
            right_table, right_node = self._run(
                plan.right, config, params, scan_keys, state
            )
            fields = join_output_fields(left_table.schema, right_table.schema)
            src_names = left_table.schema.names + right_table.schema.names
            combined_names = [(n, s) for (n, _, _), s in zip(fields, src_names, strict=True)]
            matches = theta_matches(
                left_table, right_table, plan.predicate, combined_names, params
            )
            out = materialize_join_output(
                left_table, right_table, matches, combined_names
            )
            l_bw, l_fw, r_bw, r_fw = theta_lineage_locals(matches, config)
            node = merge_binary(
                out.num_rows, left_node, right_node, l_bw, l_fw, r_bw, r_fw
            )
            return out, node

        if isinstance(plan, CrossProduct):
            left_table, left_node = self._run(
                plan.left, config, params, scan_keys, state
            )
            right_table, right_node = self._run(
                plan.right, config, params, scan_keys, state
            )
            n_left, n_right = left_table.num_rows, right_table.num_rows
            fields = join_output_fields(left_table.schema, right_table.schema)
            src_names = left_table.schema.names + right_table.schema.names
            columns = {}
            for i, ((out_name, _, _), src) in enumerate(zip(fields, src_names, strict=True)):
                if i < len(left_table.schema.names):
                    columns[out_name] = np.repeat(left_table.column(src), n_right)
                else:
                    columns[out_name] = np.tile(right_table.column(src), n_left)
            out = Table(columns)
            l_bw, l_fw, r_bw, r_fw = cross_product_lineage(n_left, n_right, config)
            node = merge_binary(
                out.num_rows, left_node, right_node, l_bw, l_fw, r_bw, r_fw
            )
            return out, node

        if isinstance(plan, SetOp):
            left_table, left_node = self._run(
                plan.left, config, params, scan_keys, state
            )
            right_table, right_node = self._run(
                plan.right, config, params, scan_keys, state
            )
            out, (l_bw, l_fw, r_bw, r_fw) = execute_setop(
                plan.op, plan.all, left_table, right_table, config
            )
            node = merge_binary(
                out.num_rows, left_node, right_node, l_bw, l_fw, r_bw, r_fw
            )
            if plan.op == "except":
                # No lineage for B (paper F.5): every output depends on all
                # of B, so Smoke answers those queries with a scan instead.
                drop_setop_right_indexes(node, left_node, right_node)
            return out, node

        raise PlanError(f"vector backend cannot execute {plan!r}")

    def _project(
        self,
        plan: Project,
        child_table: Table,
        child_node: NodeLineage,
        config: CaptureConfig,
        params: Optional[dict],
    ) -> Tuple[Table, NodeLineage]:
        from ...expr.ast import evaluate

        schema = infer_schema(plan, self.catalog)
        columns = {
            alias: np.asarray(evaluate(expr, child_table, params))
            for expr, alias in plan.exprs
        }
        projected = Table(columns, schema)
        if not plan.distinct:
            # Bag projection needs no capture: rids are unchanged (3.2.1).
            node = compose_node(projected.num_rows, child_node, None, None)
            return projected, node
        output, local_bw, local_fw = execute_distinct(projected, config)
        node = compose_node(output.num_rows, child_node, local_bw, local_fw)
        return output, node


def check_relation_pruning(
    config: CaptureConfig,
    plan: LogicalPlan,
    scan_keys: List[str],
    catalog: Optional[Catalog] = None,
    results=None,
) -> None:
    """Raise when a ``relations`` pruning entry matched no scanned
    relation (by key, base name, or alias) — the alternative is a lineage
    handle that silently captured nothing."""
    if not config.enabled or not config.relations:
        return
    sources = []
    for key, leaf in zip(scan_keys, source_leaves(plan), strict=True):
        if isinstance(leaf, Scan):
            sources.append((key, leaf.table, leaf.alias))
        else:
            sources.append((key, _lineage_scan_name(leaf, catalog, results), leaf.alias))
    missing = unmatched_capture_relations(config, sources)
    if missing:
        scanned = sorted({name for _, name, _ in sources})
        raise LineageError(
            f"capture relations {missing} matched no scanned relation "
            f"(scanned: {scanned}); use the table name, its SQL alias, or "
            f"an occurrence key like 'name#0'"
        )


def _lineage_scan_name(leaf: LineageScan, catalog, results) -> str:
    """The base-table name a lineage scan registers its lineage under —
    resolved like execution does, falling back to the literal reference
    when resolution is not possible here (execution will then raise its
    own, more specific error)."""
    if leaf.direction != "backward" or catalog is None:
        return leaf.source_name
    from ...errors import ReproError
    from ..lineage_scan import resolve_base_table

    try:
        result = results[leaf.result] if results else None
        if result is not None and result.lineage is not None:
            return resolve_base_table(catalog, result.lineage, leaf.relation)
    except (ReproError, KeyError):
        pass
    return leaf.source_name
