"""Vectorized execution backend with integrated lineage capture."""

from .executor import ExecResult, VectorExecutor

__all__ = ["ExecResult", "VectorExecutor"]
