"""Vectorized building blocks shared by the operators of this backend.

The vector backend plays the role of the paper's compiled query engine:
each kernel makes a small, fixed number of passes over columnar data, so
per-tuple interpretation cost — which would drown the instrumentation
overhead Smoke is about — never appears (see DESIGN.md, substitution 1).

``factorize`` deserves a note: it assigns dense group ids in *first
occurrence* order, which is the order a hash table's insertion scan would
produce.  The compiled backend builds groups with a Python dict (insertion
ordered), so both backends emit groups in the same order and results can be
compared exactly.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from ...errors import PlanError
from ...expr.ast import evaluate
from ...plan.logical import AggCall
from ...storage.table import Table
from .. import morsel


#: Dense-domain factorize threshold: below this (or 4x the input size) the
#: combined key codes are scattered into a first-occurrence array instead
#: of sorted — O(n + width) versus np.unique's O(n log n).
_DENSE_FACTORIZE_MAX = 1 << 16


def factorize(arrays: Sequence[np.ndarray]) -> Tuple[np.ndarray, int, np.ndarray]:
    """Dense group ids for composite keys, in first-occurrence order.

    Returns ``(group_ids, num_groups, representative_rids)`` where
    ``representative_rids[g]`` is the first input rid of group ``g``.
    """
    if not arrays:
        raise PlanError("factorize requires at least one key array")
    n = arrays[0].shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64), 0, np.empty(0, dtype=np.int64)
    combined: Optional[np.ndarray] = None
    for arr in arrays:
        codes, domain = _codes_for(arr)
        if combined is None:
            combined, width = codes, domain
        else:
            combined = combined * domain + codes
            width *= domain
    if width <= max(4 * n, _DENSE_FACTORIZE_MAX):
        # Dense code domain (the common crossfilter/TPC-H shape): skip the
        # O(n log n) sort inside np.unique.  A reversed scatter leaves, per
        # code, its *first* occurrence (later writes win, and we write
        # positions in descending order), and ranking those first
        # occurrences — num_groups elements, not n — restores
        # first-occurrence group numbering in O(n + width).
        first = np.full(width, -1, dtype=np.int64)
        first[combined[::-1]] = np.arange(n - 1, -1, -1, dtype=np.int64)
        present = np.flatnonzero(first >= 0)
        first_idx = first[present]
        order, rank = _rank_first_occurrence(first_idx)
        code_map = np.empty(width, dtype=np.int64)
        code_map[present] = rank
        return code_map[combined], int(present.shape[0]), first_idx[order]
    uniq, first_idx, inverse = np.unique(
        combined, return_index=True, return_inverse=True
    )
    # np.unique sorts by value; re-rank so group 0 is the first seen.
    order, rank = _rank_first_occurrence(first_idx)
    group_ids = rank[inverse.reshape(-1)]
    representatives = first_idx[order].astype(np.int64)
    return group_ids, int(uniq.shape[0]), representatives


def subset_groups(
    codes: np.ndarray, num_codes: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Group one row *subset* by its shared dense codes: returns
    ``(group_codes, counts)`` where ``group_codes`` lists the distinct
    codes present in the subset in **first-occurrence order** and
    ``counts[g]`` is the subset's row count for ``group_codes[g]``.

    The multi-brush batch path factorizes the union of all users' rows
    once, then derives each user's groups from the shared codes with
    pure integer ops instead of N per-user factorize passes.  Two subset
    rows share a code iff they share a key tuple, and :func:`factorize`
    numbers groups by first occurrence — so emitting the subset's codes
    in first-occurrence order (with per-code key values looked up from
    the union's representatives) reproduces *bit-identically* the output
    ``factorize`` + bincount would build from the subset's own gathered
    key values, which is what keeps batched brushes equal to per-user
    runs."""
    n = int(codes.shape[0])
    if n == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    first = np.full(num_codes, -1, dtype=np.int64)
    first[codes[::-1]] = np.arange(n - 1, -1, -1, dtype=np.int64)
    present = np.flatnonzero(first >= 0)
    order, _rank = _rank_first_occurrence(first[present])
    group_codes = present[order]
    counts = np.bincount(codes, minlength=num_codes)[group_codes].astype(np.int64)
    return group_codes, counts


def _rank_first_occurrence(first_idx: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Rank distinct values by their first input occurrence: returns
    ``(order, rank)`` where ``order`` lists value positions in
    first-seen order and ``rank`` is its inverse permutation.  Shared by
    both factorize paths so group numbering cannot diverge."""
    order = np.argsort(first_idx, kind="stable")
    rank = np.empty(order.shape[0], dtype=np.int64)
    rank[order] = np.arange(order.shape[0], dtype=np.int64)
    return order, rank


def _codes_for(arr: np.ndarray) -> Tuple[np.ndarray, int]:
    """Dense integer codes for one key column plus its domain size."""
    if arr.dtype == object or arr.dtype.kind in "US":
        # Dictionary-encode via a hash table rather than np.unique: sorting
        # object arrays runs Python comparisons and is ~5x slower than one
        # dict-building pass.  Codes come out in first-occurrence order.
        mapping: dict = {}
        out = np.empty(arr.shape[0], dtype=np.int64)
        next_code = 0
        get = mapping.get
        for i, value in enumerate(arr):
            code = get(value)
            if code is None:
                code = mapping[value] = next_code
                next_code += 1
            out[i] = code
        return out, next_code
    if arr.dtype.kind == "f":
        uniq, inverse = np.unique(arr, return_inverse=True)
        return inverse.reshape(-1).astype(np.int64), int(uniq.shape[0])
    values = arr.astype(np.int64)
    lo = int(values.min())
    hi = int(values.max())
    span = hi - lo + 1
    if span <= 2 * values.shape[0] + 16:
        return values - lo, span
    uniq, inverse = np.unique(values, return_inverse=True)
    return inverse.reshape(-1).astype(np.int64), int(uniq.shape[0])


class GroupLayout:
    """Sorted layout of rows by group: the substrate for exact aggregation.

    ``order`` is a stable argsort of the group ids; ``offsets`` delimit each
    group's segment.  Shared by all aggregates of one GROUP BY so the sort
    happens once (this is also precisely the backward rid index layout —
    the reuse principle P4 at work).  The sort is deferred until an
    aggregate (or the backward-index reuse path) actually needs member
    order: COUNT-style aggregation reads only ``counts()``, so the
    crossfilter re-aggregation shape never sorts at all.
    """

    __slots__ = ("_order", "offsets", "group_ids", "num_groups")

    def __init__(
        self,
        group_ids: np.ndarray,
        num_groups: int,
        workers: int = 1,
        counter: Optional[morsel.MorselCounter] = None,
    ):
        self.group_ids = group_ids
        self.num_groups = num_groups
        self._order = None
        # Morsel-parallel when workers > 1: per-morsel int64 partials
        # summed at the merge — exact, so offsets are bit-identical to
        # serial.  The deferred argsort in `order` stays serial.
        counts = morsel.bincount(group_ids, num_groups, workers, counter)
        self.offsets = np.empty(num_groups + 1, dtype=np.int64)
        self.offsets[0] = 0
        np.cumsum(counts, out=self.offsets[1:])

    @property
    def order(self) -> np.ndarray:
        if self._order is None:
            self._order = np.argsort(self.group_ids, kind="stable").astype(np.int64)
        return self._order

    def counts(self) -> np.ndarray:
        return np.diff(self.offsets)


def compute_aggregate(
    agg: AggCall,
    layout: GroupLayout,
    child: Table,
    params: Optional[dict] = None,
    workers: int = 1,
    counter: Optional[morsel.MorselCounter] = None,
) -> np.ndarray:
    """Evaluate one aggregate over every group.

    Only the value *gather* into group order runs morsel-parallel (a
    permutation — element-identical for any worker count); the reduceat
    reductions stay serial so float sums never reassociate.
    """
    n_groups = layout.num_groups
    if agg.func == "count" and agg.arg is None:
        return layout.counts().astype(np.int64)
    values = evaluate(agg.arg, child, params) if agg.arg is not None else None
    if n_groups == 0:
        dtype = np.float64 if agg.func == "avg" else (
            values.dtype if values is not None else np.int64
        )
        return np.empty(0, dtype=dtype)
    if agg.func == "count":
        return layout.counts().astype(np.int64)
    if agg.func == "count_distinct":
        codes, domain = _codes_for(values)
        combined = layout.group_ids.astype(np.int64) * domain + codes
        uniq = np.unique(combined)
        return np.bincount(uniq // domain, minlength=n_groups).astype(np.int64)
    sorted_vals = morsel.gather(values, layout.order, workers, counter)
    if sorted_vals.dtype == bool:
        # Boolean predicates aggregate as 0/1 counts (e.g. TPC-H Q12's
        # CASE-like sums); reduceat over bool would compute logical OR.
        sorted_vals = sorted_vals.astype(np.int64)
    starts = layout.offsets[:-1]
    if agg.func == "sum":
        out = np.add.reduceat(sorted_vals, starts)
        return out
    if agg.func == "avg":
        sums = np.add.reduceat(sorted_vals.astype(np.float64), starts)
        return sums / layout.counts()
    if agg.func == "min":
        return np.minimum.reduceat(sorted_vals, starts)
    if agg.func == "max":
        return np.maximum.reduceat(sorted_vals, starts)
    raise PlanError(f"unknown aggregate {agg.func!r}")


def chunk_ranges(n: int, chunk_size: int):
    """Yield ``(lo, hi)`` covering ``[0, n)`` in chunks (Inject's unit of
    appending work)."""
    lo = 0
    while lo < n:
        hi = min(n, lo + chunk_size)
        yield lo, hi
        lo = hi
