"""Instrumented selection (paper Section 3.2.2).

Selection emits rows that pass a predicate.  Lineage is 1-to-1 in both
directions: the backward rid array holds, per output row, the input rid
that produced it; the forward rid array holds, per input row, its output
rid or NO_MATCH.

The forward array can always be pre-allocated (input cardinality is
known).  The backward array under Inject is an append-per-passing-row
structure: without a selectivity estimate it starts at 10 elements and
grows 1.5x, and the resizing (re-copying) cost is the measurable overhead;
with an estimate (Smoke-I-EC) it is pre-allocated — over-estimates are
harmless, under-estimates re-introduce resizes (Appendix G.1).  The paper
does not implement Defer for selection ("strictly inferior to Inject"), so
Defer falls back to Inject here as well.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ...expr.ast import Expr, evaluate
from ...lineage.capture import CaptureConfig
from ...lineage.composer import selection_locals
from ...lineage.indexes import RidArray
from ...storage.growable import GrowableRidVector
from ...storage.table import Table
from .kernels import chunk_ranges


def execute_select(
    child: Table,
    predicate: Expr,
    config: CaptureConfig,
    params: Optional[dict],
    label: str = "select",
) -> Tuple[Table, Optional[RidArray], Optional[RidArray]]:
    """Run the filter; returns ``(output, local backward, local forward)``.

    Local indexes are ``None`` when capture is disabled.
    """
    n = child.num_rows
    mask = np.asarray(evaluate(predicate, child, params), dtype=bool)
    if not config.enabled:
        return child.filter(mask), None, None

    capacity = None
    if config.hints is not None:
        selectivity = config.hints.selectivity_for(label)
        if selectivity is not None:
            capacity = max(1, int(np.ceil(n * selectivity)))

    backward_vec = GrowableRidVector(capacity if capacity is not None else 10)
    for lo, hi in chunk_ranges(n, config.chunk_size):
        passing = np.nonzero(mask[lo:hi])[0]
        if passing.size:
            backward_vec.extend(passing + lo)
    out_rids = backward_vec.view()
    local_backward, local_forward = selection_locals(out_rids, n, config)
    return child.take(out_rids), local_backward, local_forward
