"""Nested-loop θ-joins and cross products (Appendix F.6-F.7).

θ-joins evaluate an arbitrary predicate over the (chunked) cross space.
Output order matches the paper's doubly-nested loop: left-major, then
right.  Backward lineage is two rid arrays written serially with the
output; the left forward index can be condensed because outputs for one
left row are contiguous.

Cross products need no stored lineage at all — the paper observes that
lineage is *computable* from the operand cardinalities (output ``k`` comes
from left ``k // |B|`` and right ``k % |B|``).  We expose that closed form
as materialized rid arrays/indexes only when capture is requested, and the
construction is a pair of ``arange``/``repeat`` calls rather than per-tuple
work.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ...expr.ast import Expr, evaluate
from ...lineage.capture import CaptureConfig
from ...lineage.indexes import RidArray, RidIndex
from ...storage.table import Table
from .join import JoinMatches, join_lineage_locals
from .kernels import chunk_ranges


def theta_matches(
    left: Table,
    right: Table,
    predicate: Expr,
    combined_names: List[Tuple[str, str]],
    params: Optional[dict],
    chunk_rows: int = 1 << 14,
) -> JoinMatches:
    """Evaluate the predicate over the cross space in left-row chunks."""
    n_left, n_right = left.num_rows, right.num_rows
    out_left_parts = []
    out_right_parts = []
    if n_left and n_right:
        chunk = max(1, chunk_rows // max(1, n_right))
        right_tiled_cols = {}
        n_left_cols = len(left.schema.names)
        for lo, hi in chunk_ranges(n_left, chunk):
            block = hi - lo
            columns = {}
            for i, (out_name, src_name) in enumerate(combined_names):
                if i < n_left_cols:
                    columns[out_name] = np.repeat(
                        left.column(src_name)[lo:hi], n_right
                    )
                else:
                    if src_name not in right_tiled_cols:
                        right_tiled_cols[src_name] = right.column(src_name)
                    columns[out_name] = np.tile(right_tiled_cols[src_name], block)
            cross = Table(columns)
            mask = np.asarray(evaluate(predicate, cross, params), dtype=bool)
            hits = np.nonzero(mask)[0]
            out_left_parts.append(hits // n_right + lo)
            out_right_parts.append(hits % n_right)
    out_left = (
        np.concatenate(out_left_parts) if out_left_parts else np.empty(0, np.int64)
    )
    out_right = (
        np.concatenate(out_right_parts) if out_right_parts else np.empty(0, np.int64)
    )
    return JoinMatches(out_left, out_right, n_left, n_right)


def theta_lineage_locals(matches: JoinMatches, config: CaptureConfig):
    """θ-join lineage: same shapes as an m:n hash join, but the probe-side
    contiguity trick applies to the *left* relation here (left-major
    output order), so we reuse the join machinery with sides flipped."""
    if not config.enabled:
        return None, None, None, None
    flipped = JoinMatches(
        matches.out_right, matches.out_left, matches.num_right, matches.num_left
    )
    r_bw, r_fw, l_bw, l_fw = join_lineage_locals(flipped, config, pkfk=False)
    return l_bw, l_fw, r_bw, r_fw


def cross_product_lineage(
    n_left: int, n_right: int, config: CaptureConfig
):
    """Closed-form cross product lineage (paper F.7)."""
    if not config.enabled:
        return None, None, None, None
    n_out = n_left * n_right
    l_bw = r_bw = l_fw = r_fw = None
    if config.backward:
        l_bw = RidArray(np.repeat(np.arange(n_left, dtype=np.int64), n_right))
        r_bw = RidArray(np.tile(np.arange(n_right, dtype=np.int64), n_left))
    if config.forward:
        offsets = np.arange(n_left + 1, dtype=np.int64) * n_right
        l_fw = RidIndex(offsets, np.arange(n_out, dtype=np.int64))
        if n_right:
            base = np.arange(n_out, dtype=np.int64).reshape(n_left, n_right)
            r_values = base.T.reshape(-1)
        else:
            r_values = np.empty(0, dtype=np.int64)
        r_offsets = np.arange(n_right + 1, dtype=np.int64) * n_left
        r_fw = RidIndex(r_offsets, r_values)
    return l_bw, l_fw, r_bw, r_fw
