"""Instrumented group-by aggregation (paper Section 3.2.3, Figure 4 a/b).

The engine decomposes GROUP BY into a build over the input (assigning each
row its group — our vectorized ``factorize`` plays the role of γ_ht) and an
output scan producing one row per group (γ_agg).  Lineage:

* backward: rid *index* (group → member input rids),
* forward: rid *array* (input rid → group rid), which is exactly the dense
  group-id column the build phase computes — reuse principle P4: the
  structure built for normal execution doubles as the forward index.

Inject builds the backward index's buckets during execution with growable
rid vectors (10 / 1.5x policy; per-group cardinality hints pre-allocate —
Smoke-I-TC).  Defer instead pins the group-id column and returns a thunk;
finalization later performs one exact-allocation counting sort and never
resizes (paper: reuse the pinned hash table during user think time).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...expr.ast import evaluate
from ...lineage.capture import CaptureConfig, CaptureMode, IndexOrThunk
from ...lineage.indexes import GrowableRidIndex, RidArray, RidIndex
from ...plan.logical import GroupBy
from ...storage.table import Schema, Table
from .. import morsel
from .kernels import GroupLayout, chunk_ranges, compute_aggregate, factorize


def build_groups(
    child: Table,
    key_exprs: Sequence,
    params: Optional[dict],
) -> Tuple[np.ndarray, int, np.ndarray, List[np.ndarray]]:
    """The γ_ht phase: evaluate keys and assign dense group ids.

    A key-less (global) aggregate forms a single group over non-empty
    input and zero groups over empty input, mirroring the hash-table
    implementation (an empty table yields no entries to scan).
    """
    key_arrays = [np.asarray(evaluate(e, child, params)) for e, _ in key_exprs]
    if child.num_rows == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, 0, empty, key_arrays
    if not key_arrays:
        n = child.num_rows
        return (
            np.zeros(n, dtype=np.int64),
            1,
            np.zeros(1, dtype=np.int64),
            key_arrays,
        )
    group_ids, num_groups, representatives = factorize(key_arrays)
    return group_ids, num_groups, representatives, key_arrays


def inject_backward_index(
    group_ids: np.ndarray,
    num_groups: int,
    chunk_size: int,
    capacities: Optional[np.ndarray] = None,
) -> Tuple[RidIndex, int]:
    """Build the backward rid index with Inject-style growable appends.

    Returns the finished index and the number of bucket resizes incurred
    (zero when exact capacities were provided — the Smoke-I-TC effect).
    """
    growable = GrowableRidIndex(num_groups, capacities)
    for lo, hi in chunk_ranges(group_ids.shape[0], chunk_size):
        chunk = group_ids[lo:hi]
        order = np.argsort(chunk, kind="stable")
        sorted_ids = chunk[order]
        boundaries = np.nonzero(np.diff(sorted_ids))[0] + 1
        starts = np.concatenate(([0], boundaries))
        ends = np.concatenate((boundaries, [sorted_ids.shape[0]]))
        for s, e in zip(starts, ends, strict=True):
            if s == e:
                continue
            growable.extend(int(sorted_ids[s]), order[s:e] + lo)
    return growable.finalize(), growable.total_resizes


def execute_groupby(
    child: Table,
    node: GroupBy,
    config: CaptureConfig,
    params: Optional[dict],
    output_schema: Schema,
    label: str = "groupby",
    workers: int = 1,
    counter: Optional[morsel.MorselCounter] = None,
) -> Tuple[Table, Optional[IndexOrThunk], Optional[IndexOrThunk]]:
    """Run aggregation; returns ``(output, local backward, local forward)``.

    ``workers > 1`` runs the layout bincount and the per-aggregate value
    gathers morsel-parallel; group assignment (``factorize``) and the
    reduceat reductions stay serial, so output rows and lineage are
    bit-identical to the serial run.
    """
    group_ids, num_groups, representatives, key_arrays = build_groups(
        child, node.keys, params
    )
    layout = GroupLayout(group_ids, num_groups, workers, counter) if num_groups else None

    columns: Dict[str, np.ndarray] = {}
    for (_expr, alias), arr in zip(node.keys, key_arrays, strict=True):
        columns[alias] = arr[representatives] if num_groups else arr[:0]
    for agg in node.aggs:
        if layout is None:
            columns[agg.alias] = np.empty(
                0, dtype=output_schema.type_of(agg.alias).numpy_dtype
            )
        else:
            columns[agg.alias] = compute_aggregate(
                agg, layout, child, params, workers, counter
            )
    output = Table(columns, output_schema)

    local_backward: Optional[IndexOrThunk] = None
    local_forward: Optional[IndexOrThunk] = None
    if config.enabled:
        if config.backward:
            if config.mode is CaptureMode.DEFER:
                # Pin the build-phase output (the group-id column stands in
                # for the pinned hash table) and construct later.
                pinned_ids, pinned_n = group_ids, num_groups

                def backward_thunk() -> RidIndex:
                    return RidIndex.from_group_ids(pinned_ids, pinned_n)

                local_backward = backward_thunk
            elif config.emulate_tuple_appends:
                capacities = None
                if config.hints is not None:
                    capacities = config.hints.group_count_for(label)
                index, _resizes = inject_backward_index(
                    group_ids, num_groups, config.chunk_size, capacities
                )
                # Chunked stable appends land bucket-by-bucket in rid
                # order — the canonical inversion of the group ids, which
                # the durability layer can persist as a marker.
                index._inverse_of = group_ids
                local_backward = index
            elif layout is not None:
                # Reuse (P4): the aggregation's sorted layout *is* the
                # backward rid index — γ'_ht reusing the hash table, in
                # vectorized form.  No extra pass, no resizing.
                local_backward = RidIndex(layout.offsets, layout.order)
                local_backward._inverse_of = group_ids
            else:
                local_backward = RidIndex.empty(0)
        if config.forward:
            local_forward = RidArray(group_ids.copy())

    if node.having is not None:
        keep = np.asarray(evaluate(node.having, output, params), dtype=bool)
        kept = np.nonzero(keep)[0].astype(np.int64)
        output = output.take(kept)
        local_backward = _filter_backward(local_backward, kept)
        local_forward = _filter_forward(local_forward, keep, kept)

    return output, local_backward, local_forward


def execute_distinct(
    projected: Table,
    config: CaptureConfig,
) -> Tuple[Table, Optional[IndexOrThunk], Optional[IndexOrThunk]]:
    """Deduplicate an already-projected table (set-semantics projection,
    paper Section 3.2.1): one representative row per distinct value tuple,
    with group lineage — backward rid index (output row → member input
    rids), forward rid array (input rid → output row).

    Shared by the vector executor's ``DISTINCT`` projection and the
    late-materializing pushed path (:mod:`repro.exec.late_mat`), so both
    produce bit-identical rows and indexes by construction.
    """
    if projected.num_rows == 0:
        return projected, RidIndex.empty(0), RidArray(np.empty(0, np.int64))
    group_ids, num_groups, representatives = factorize(
        [projected.column(n) for n in projected.schema.names]
    )
    output = projected.take(representatives)
    local_backward: Optional[IndexOrThunk] = None
    local_forward: Optional[IndexOrThunk] = None
    if config.enabled:
        if config.backward:
            if config.mode is CaptureMode.DEFER:
                local_backward = (
                    lambda g=group_ids, n=num_groups: RidIndex.from_group_ids(g, n)
                )
            else:
                local_backward = RidIndex.from_group_ids(group_ids, num_groups)
        if config.forward:
            local_forward = RidArray(group_ids.copy())
    return output, local_backward, local_forward


def _filter_backward(entry, kept: np.ndarray):
    """Restrict a (possibly deferred) group backward index to kept groups."""
    if entry is None:
        return None
    if callable(entry):
        def thunk(entry=entry, kept=kept) -> RidIndex:
            full = entry()
            return RidIndex.from_buckets([full.lookup(int(g)) for g in kept])

        return thunk
    return RidIndex.from_buckets([entry.lookup(int(g)) for g in kept])


def _filter_forward(entry, keep_mask: np.ndarray, kept: np.ndarray):
    """Remap a forward rid array after a HAVING filter on groups."""
    if entry is None:
        return None
    remap = np.full(keep_mask.shape[0], -1, dtype=np.int64)
    remap[kept] = np.arange(kept.shape[0], dtype=np.int64)

    if callable(entry):
        def thunk(entry=entry, remap=remap) -> RidArray:
            return RidArray(remap[entry().values])

        return thunk
    return RidArray(remap[entry.values])
