"""SQL tokenizer for the subset the paper's queries use."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import SqlError

KEYWORDS = {
    "select", "distinct", "from", "where", "group", "by", "having", "as",
    "and", "or", "not", "in", "between", "join", "inner", "on", "union",
    "intersect", "except", "all", "count", "sum", "avg", "min", "max",
    "extract", "year", "month", "sqrt", "abs", "floor", "asc", "desc", "order",
    "limit",
}

#: Lineage-consuming table functions (paper Section 2.1): ``Lb(result,
#: relation)`` and ``Lf(relation, result)``.  Deliberately *not* keywords —
#: they only act as functions in FROM position when followed by ``(``, so
#: tables or columns named ``lb``/``lf`` keep working.
LINEAGE_TABLE_FUNCS = {"lb", "lf"}


def is_safe_identifier(name: str) -> bool:
    """Can ``name`` be embedded in *generated* SQL as a bare identifier?
    False for keywords (``year``, ``order``, ...) and anything that would
    not lex as a single ident token."""
    return name.isidentifier() and name.lower() not in KEYWORDS

_PUNCT = {
    "<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", "*", "+", "-",
    "/", ".", ";",
}


@dataclass(frozen=True)
class Token:
    kind: str  # 'ident', 'keyword', 'int', 'float', 'string', 'param', 'punct', 'eof'
    value: str
    position: int

    def is_kw(self, *names: str) -> bool:
        return self.kind == "keyword" and self.value in names

    def is_punct(self, *values: str) -> bool:
        return self.kind == "punct" and self.value in values

    def is_lineage_func(self) -> bool:
        return self.kind == "ident" and self.value.lower() in LINEAGE_TABLE_FUNCS


def tokenize(text: str) -> List[Token]:
    tokens: List[Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and text[i : i + 2] == "--":
            while i < n and text[i] != "\n":
                i += 1
            continue
        if ch == "'":
            j = i + 1
            buf = []
            while j < n:
                if text[j] == "'":
                    if text[j : j + 2] == "''":  # escaped quote
                        buf.append("'")
                        j += 2
                        continue
                    break
                buf.append(text[j])
                j += 1
            else:
                raise SqlError("unterminated string literal", i)
            tokens.append(Token("string", "".join(buf), i))
            i = j + 1
            continue
        if ch == ":":
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            if j == i + 1:
                raise SqlError("empty parameter name after ':'", i)
            tokens.append(Token("param", text[i + 1 : j], i))
            i = j
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # A dot not followed by a digit is punctuation (t.col).
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            literal = text[i:j]
            kind = "float" if "." in literal else "int"
            tokens.append(Token(kind, literal, i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token("keyword", lowered, i))
            else:
                tokens.append(Token("ident", word, i))
            i = j
            continue
        two = text[i : i + 2]
        if two in _PUNCT:
            tokens.append(Token("punct", two, i))
            i += 2
            continue
        if ch in _PUNCT:
            tokens.append(Token("punct", ch, i))
            i += 1
            continue
        raise SqlError(f"unexpected character {ch!r}", i)
    tokens.append(Token("eof", "", n))
    return tokens
