"""Semantic analysis: raw SQL AST → logical plan against a catalog.

The binder resolves (possibly qualified) column references through the
FROM clause's scope, lowers comma-joins with equality predicates into hash
joins (detecting pk-fk joins when the build side's key is a unique column
of a base table), separates aggregates from scalar expressions, and
normalizes the SELECT list into a ``Project`` over a ``GroupBy`` when
aggregation is present.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import SqlError
from ..expr.ast import BinOp, Col, Const, Expr, Func, InList, Not, Param
from ..plan.logical import (
    AggCall,
    CrossProduct,
    GroupBy,
    HashJoin,
    LineageScan,
    LogicalPlan,
    Project,
    Scan,
    Select,
    SetOp,
    Sort,
)
from ..plan.schema import JOIN_RENAME_SUFFIX
from ..storage.catalog import Catalog
from .parser import (
    JoinClause,
    RawAgg,
    RawBin,
    RawColumn,
    RawConst,
    RawFunc,
    RawIn,
    RawNot,
    RawParam,
    SelectItem,
    SelectStatement,
    SetStatement,
    Statement,
    parse,
)


def parse_sql(text: str, catalog: Catalog, results=None) -> LogicalPlan:
    """Parse and bind a SQL statement into a logical plan.

    ``results`` is the registry of named prior query results (mapping name
    to :class:`~repro.api.QueryResult`) that lineage-consuming table
    expressions — ``FROM Lb(result, 'relation')`` / ``FROM Lf('relation',
    result)`` — resolve against; names are checked at bind time (and the
    prior result's output schema is frozen into the plan for ``Lf``), but
    the result object itself is looked up again at execution time.
    """
    return bind(parse(text), catalog, results)


def bind(statement: Statement, catalog: Catalog, results=None) -> LogicalPlan:
    if isinstance(statement, SetStatement):
        left = bind(statement.left, catalog, results)
        right = bind(statement.right, catalog, results)
        return SetOp(statement.op, left, right, all=statement.all)
    return _SelectBinder(statement, catalog, results).bind()


@dataclass
class _ScopeEntry:
    alias: str
    table: str
    col_map: Dict[str, str]  # original column name -> current output name


class _Scope:
    """Column visibility during FROM-clause construction."""

    def __init__(self):
        self.entries: List[_ScopeEntry] = []
        self.taken: set = set()

    def add_table(self, alias: str, table: str, columns: Sequence[str]) -> None:
        col_map = {}
        for name in columns:
            out = name
            while out in self.taken:
                out += JOIN_RENAME_SUFFIX
            self.taken.add(out)
            col_map[name] = out
        self.entries.append(_ScopeEntry(alias, table, col_map))

    def resolve(self, ref: RawColumn) -> str:
        if ref.qualifier is not None:
            for entry in self.entries:
                if entry.alias == ref.qualifier or entry.table == ref.qualifier:
                    if ref.name not in entry.col_map:
                        raise SqlError(
                            f"table {ref.qualifier!r} has no column {ref.name!r}"
                        )
                    return entry.col_map[ref.name]
            raise SqlError(f"unknown table qualifier {ref.qualifier!r}")
        hits = [
            entry.col_map[ref.name]
            for entry in self.entries
            if ref.name in entry.col_map
        ]
        if not hits:
            raise SqlError(f"unknown column {ref.name!r}")
        if len(hits) > 1 and len(set(hits)) > 1:
            raise SqlError(f"ambiguous column {ref.name!r}; qualify it")
        return hits[0]

    def side_of(self, ref: RawColumn, boundary: int) -> str:
        """'left' if the reference resolves into entries[:boundary]."""
        if ref.qualifier is not None:
            for i, entry in enumerate(self.entries):
                if entry.alias == ref.qualifier or entry.table == ref.qualifier:
                    return "left" if i < boundary else "right"
            raise SqlError(f"unknown table qualifier {ref.qualifier!r}")
        for i, entry in enumerate(self.entries):
            if ref.name in entry.col_map:
                return "left" if i < boundary else "right"
        raise SqlError(f"unknown column {ref.name!r}")


class _SelectBinder:
    def __init__(self, stmt: SelectStatement, catalog: Catalog, results=None):
        self.stmt = stmt
        self.catalog = catalog
        self.results = results
        self.scope = _Scope()

    # -- entry point --------------------------------------------------------------

    def bind(self) -> LogicalPlan:
        plan, residual_where = self._bind_from()
        if residual_where is not None:
            plan = Select(plan, residual_where)

        items = self._expand_star(self.stmt.items)
        has_aggs = any(_contains_agg(i.expr) for i in items if not i.star)
        if self.stmt.group_by or has_aggs:
            plan = self._bind_aggregation(plan, items)
        else:
            if self.stmt.having is not None:
                raise SqlError("HAVING requires GROUP BY or aggregates")
            if not all(i.star for i in self.stmt.items):
                exprs = []
                for i, item in enumerate(items):
                    expr = self._scalar(item.expr)
                    exprs.append((expr, self._alias_for(item, expr, i)))
                plan = Project(plan, exprs)
        if self.stmt.distinct:
            if isinstance(plan, Project) and not plan.distinct:
                plan = Project(plan.child, plan.exprs, distinct=True)
            else:
                names = self._output_names(plan)
                plan = Project(plan, [(Col(n), n) for n in names], distinct=True)
        order_by = self.stmt.order_by or []
        if order_by or self.stmt.limit is not None:
            names = set(self._output_names(plan))
            for name, _ in order_by:
                if name not in names:
                    raise SqlError(
                        f"ORDER BY references unknown output column {name!r}"
                    )
            plan = Sort(plan, order_by, limit=self.stmt.limit)
        return plan

    # -- FROM clause -----------------------------------------------------------------

    def _from_item(self, ref) -> Tuple[LogicalPlan, List[str]]:
        """Plan + output column names for one FROM item (table, derived
        table, or lineage-consuming table function)."""
        if ref.lineage is not None:
            return self._lineage_from_item(ref)
        if ref.subquery is not None:
            from ..plan.schema import infer_schema

            sub_plan = bind(ref.subquery, self.catalog, self.results)
            return sub_plan, infer_schema(sub_plan, self.catalog).names
        table = self.catalog.get(ref.table)
        alias = ref.alias if ref.alias != ref.table else None
        return Scan(ref.table, alias=alias), table.schema.names

    def _lineage_from_item(self, ref) -> Tuple[LogicalPlan, List[str]]:
        raw = ref.lineage
        if self.results is None or raw.result not in self.results:
            known = sorted(self.results) if self.results else []
            raise SqlError(
                f"unknown result {raw.result!r} in {raw.func.upper()}(...); "
                f"register the prior query with Database.register_result "
                f"(known: {known})"
            )
        prior = self.results[raw.result]
        if prior.lineage is None:
            raise SqlError(
                f"result {raw.result!r} was executed without lineage "
                "capture; re-run it with capture enabled to consume its "
                "lineage"
            )
        if raw.func == "lb":
            # Lb yields a subset of the traced base relation's rows.  The
            # relation argument may be a base name, a self-join occurrence
            # key ('t#0'), or a SQL alias of the prior query.
            from ..exec.lineage_scan import resolve_base_table

            base = resolve_base_table(self.catalog, prior.lineage, raw.relation)
            schema = self.catalog.get(base).schema
            source_name = raw.relation
        else:
            # Lf yields a subset of the prior result's output rows.
            if not prior.lineage.keys_for(raw.relation):
                raise SqlError(
                    f"result {raw.result!r} has no lineage for relation "
                    f"{raw.relation!r}; captured: {prior.lineage.relations}"
                )
            schema = prior.table.schema
            source_name = raw.result
        rids = self._bind_rid_spec(raw.rids)
        plan = LineageScan(
            result=raw.result,
            relation=raw.relation,
            direction="backward" if raw.func == "lb" else "forward",
            rids=rids,
            alias=ref.alias if ref.alias != source_name else None,
            schema=schema,
        )
        return plan, schema.names

    def _bind_rid_spec(self, raw) -> Optional[Expr]:
        if raw is None:
            return None
        if isinstance(raw, RawParam):
            return Param(raw.name)
        return Const(raw)  # tuple of int literals

    def _bind_from(self) -> Tuple[LogicalPlan, Optional[Expr]]:
        base = self.stmt.base
        plan, base_columns = self._from_item(base)
        self.scope.add_table(base.alias, base.table or base.alias, base_columns)

        conjuncts = _split_conjuncts(self.stmt.where)
        for clause in self.stmt.joins:
            right_plan, right_names = self._from_item(clause.ref)
            boundary = len(self.scope.entries)

            if clause.comma:
                eq_pairs, conjuncts = self._extract_equi_conditions(
                    conjuncts, clause, boundary, right_names
                )
            else:
                eq_pairs = self._resolve_on_conditions(clause, boundary, right_names)

            self.scope.add_table(
                clause.ref.alias, clause.ref.table or clause.ref.alias, right_names
            )
            if eq_pairs:
                left_keys = [l for l, _ in eq_pairs]
                right_keys = [r for _, r in eq_pairs]
                pkfk = self._is_unique_key(plan, left_keys)
                plan = HashJoin(plan, right_plan, left_keys, right_keys, pkfk=pkfk)
            else:
                plan = CrossProduct(plan, right_plan)

        where = None
        for raw in conjuncts:
            bound = self._scalar(raw)
            where = bound if where is None else BinOp("and", where, bound)
        return plan, where

    def _resolve_on_conditions(
        self, clause: JoinClause, boundary: int, right_names: Sequence[str]
    ) -> List[Tuple[str, str]]:
        pairs = []
        for a, b in clause.conditions:
            side_a, side_b = self._assign_on_sides(
                self.scope_side_for_on(a, clause, boundary, right_names),
                self.scope_side_for_on(b, clause, boundary, right_names),
            )
            left_ref, right_ref = (a, b) if side_a == "left" else (b, a)
            pairs.append((self.scope.resolve(left_ref), right_ref.name))
        return pairs

    @staticmethod
    def _assign_on_sides(side_a: str, side_b: str) -> Tuple[str, str]:
        """Settle one ON condition's sides from per-reference candidates.

        A reference may be satisfiable by ``"both"`` sides — e.g. ``FROM
        Lb(res, 't') JOIN t ON t.z = t.z``, where the qualifier ``t``
        names the lineage scan's default alias *and* the joining table.
        An ambiguous reference takes the side its partner cannot, and a
        fully ambiguous condition breaks the tie left-preferring (the
        written order: first operand left, second right) — so self-joins
        back to a FROM item's own base table need no explicit alias.

        This deliberately resolves rather than rejects ambiguity: the
        "must relate both sides" constraint pins every tied reference to
        exactly one side (given its partner), and the written-order rule
        makes the remaining fully-tied case deterministic.  Qualify the
        reference to override.
        """
        if side_a == "both":
            side_a = "right" if side_b == "left" else "left"
        if side_b == "both":
            side_b = "right" if side_a == "left" else "left"
        if {side_a, side_b} != {"left", "right"}:
            raise SqlError("JOIN ON condition must relate both sides")
        return side_a, side_b

    def scope_side_for_on(
        self, ref: RawColumn, clause: JoinClause, boundary: int,
        right_names: Sequence[str],
    ) -> str:
        """Which side(s) of the join can satisfy ``ref``: ``"left"``,
        ``"right"``, or ``"both"`` (a qualifier tie, settled per
        condition by :meth:`_assign_on_sides`)."""
        if ref.qualifier is not None:
            in_left = any(
                e.alias == ref.qualifier or e.table == ref.qualifier
                for e in self.scope.entries
            )
            in_right = ref.qualifier in (clause.ref.alias, clause.ref.table)
            if in_left and in_right:
                return "both"
            if in_right:
                return "right"
            return "left"
        in_left = any(ref.name in e.col_map for e in self.scope.entries)
        in_right = ref.name in right_names
        if in_left and in_right:
            return "both"
        if in_right:
            return "right"
        return "left"

    def _extract_equi_conditions(
        self,
        conjuncts: List[object],
        clause: JoinClause,
        boundary: int,
        right_names: Sequence[str],
    ) -> Tuple[List[Tuple[str, str]], List[object]]:
        """Pull ``left.col = new.col`` conjuncts out of WHERE for a
        comma-join (the FROM a, b WHERE a.x = b.y idiom)."""
        pairs: List[Tuple[str, str]] = []
        remaining: List[object] = []
        for raw in conjuncts:
            pair = self._as_cross_pair(raw, clause, right_names)
            if pair is not None:
                pairs.append(pair)
            else:
                remaining.append(raw)
        return pairs, remaining

    def _as_cross_pair(self, raw, clause: JoinClause, right_names) -> Optional[Tuple[str, str]]:
        if not (isinstance(raw, RawBin) and raw.op == "="):
            return None
        if not (isinstance(raw.left, RawColumn) and isinstance(raw.right, RawColumn)):
            return None

        def belongs_right(ref: RawColumn) -> bool:
            if ref.qualifier is not None:
                return ref.qualifier in (clause.ref.alias, clause.ref.table)
            return ref.name in right_names

        def belongs_left(ref: RawColumn) -> bool:
            if ref.qualifier is not None:
                return any(
                    e.alias == ref.qualifier or e.table == ref.qualifier
                    for e in self.scope.entries
                )
            return any(ref.name in e.col_map for e in self.scope.entries)

        a, b = raw.left, raw.right
        if belongs_left(a) and belongs_right(b) and not belongs_right(a):
            return (self.scope.resolve(a), b.name)
        if belongs_left(b) and belongs_right(a) and not belongs_right(b):
            return (self.scope.resolve(b), a.name)
        return None

    def _is_unique_key(self, plan: LogicalPlan, keys: Sequence[str]) -> bool:
        """Detect pk-fk joins: build side is a base scan (optionally
        filtered) whose key columns form a unique key in the data."""
        node = plan
        while isinstance(node, Select):
            node = node.child
        if not isinstance(node, Scan):
            return False
        table = self.catalog.get(node.table)
        if any(k not in table.schema for k in keys):
            return False
        arrays = [table.column(k) for k in keys]
        if table.num_rows == 0:
            return True
        if len(arrays) == 1:
            return np.unique(arrays[0]).shape[0] == table.num_rows
        rows = set(zip(*arrays, strict=True))
        return len(rows) == table.num_rows

    # -- SELECT list and aggregation ------------------------------------------------

    def _expand_star(self, items: List[SelectItem]) -> List[SelectItem]:
        out: List[SelectItem] = []
        for item in items:
            if item.star:
                for entry in self.scope.entries:
                    for current in entry.col_map.values():
                        out.append(
                            SelectItem(RawColumn(None, current), alias=current)
                        )
            else:
                out.append(item)
        return out

    def _bind_aggregation(self, plan: LogicalPlan, items: List[SelectItem]) -> LogicalPlan:
        keys: List[Tuple[Expr, str]] = []
        key_exprs: List[Expr] = []
        for i, raw in enumerate(self.stmt.group_by):
            expr = self._scalar(raw)
            alias = self._group_key_alias(raw, expr, i, items)
            keys.append((expr, alias))
            key_exprs.append(expr)

        aggs: List[AggCall] = []
        select_exprs: List[Tuple[Expr, str]] = []
        for i, item in enumerate(items):
            if _contains_agg(item.expr):
                if not isinstance(item.expr, RawAgg):
                    raise SqlError(
                        "aggregates must be top-level select expressions "
                        "(e.g. SUM(v*v), not SUM(v)/2)"
                    )
                agg = self._bind_agg(item.expr, f"agg{i}" if item.alias is None else item.alias)
                aggs.append(agg)
                select_exprs.append((Col(agg.alias), agg.alias))
            else:
                expr = self._scalar(item.expr)
                match = next((a for e, a in keys if e == expr), None)
                if match is None:
                    raise SqlError(
                        f"non-aggregate select expression {expr!r} must appear "
                        "in GROUP BY"
                    )
                alias = self._alias_for(item, expr, i)
                select_exprs.append((Col(match), alias))

        having = None
        if self.stmt.having is not None:
            having, extra_aggs = self._bind_having(self.stmt.having, keys, aggs)
            aggs = aggs + extra_aggs

        grouped = GroupBy(plan, keys, aggs, having=having)
        return Project(grouped, select_exprs)

    def _group_key_alias(self, raw, expr: Expr, i: int, items: List[SelectItem]) -> str:
        for item in items:
            if item.expr is not None and not _contains_agg(item.expr):
                if self._scalar(item.expr) == expr and item.alias:
                    return item.alias
        if isinstance(expr, Col):
            return expr.name
        return f"key{i}"

    def _bind_agg(self, raw: RawAgg, alias: str) -> AggCall:
        arg = self._scalar(raw.arg) if raw.arg is not None else None
        return AggCall(raw.func, arg, alias)

    def _bind_having(self, raw, keys, aggs) -> Tuple[Expr, List[AggCall]]:
        """Bind HAVING over the aggregate output; aggregates appearing only
        in HAVING become hidden aggregates dropped by the final Project."""
        extra: List[AggCall] = []

        def walk(node) -> Expr:
            if isinstance(node, RawAgg):
                candidate = self._bind_agg(node, "__h")
                for agg in aggs + extra:
                    if (agg.func, agg.arg) == (candidate.func, candidate.arg):
                        return Col(agg.alias)
                hidden = AggCall(
                    candidate.func, candidate.arg, f"__having{len(extra)}"
                )
                extra.append(hidden)
                return Col(hidden.alias)
            if isinstance(node, RawBin):
                return BinOp(node.op, walk(node.left), walk(node.right))
            if isinstance(node, RawNot):
                return Not(walk(node.operand))
            if isinstance(node, RawIn):
                return InList(walk(node.operand), _in_choices(node))
            if isinstance(node, RawColumn):
                # In HAVING scope, names refer to group-key aliases.
                for _expr, alias in keys:
                    if alias == node.name:
                        return Col(alias)
                resolved = self.scope.resolve(node)
                for expr, alias in keys:
                    if expr == Col(resolved):
                        return Col(alias)
                raise SqlError(f"HAVING references non-grouped column {node.name!r}")
            if isinstance(node, RawConst):
                return Const(node.value)
            if isinstance(node, RawParam):
                return Param(node.name)
            if isinstance(node, RawFunc):
                return Func(node.name, [walk(a) for a in node.args])
            raise SqlError(f"unsupported HAVING expression {node!r}")

        return walk(raw), extra

    # -- scalar expression binding ------------------------------------------------------

    def _scalar(self, raw) -> Expr:
        if isinstance(raw, RawColumn):
            return Col(self.scope.resolve(raw))
        if isinstance(raw, RawConst):
            return Const(raw.value)
        if isinstance(raw, RawParam):
            return Param(raw.name)
        if isinstance(raw, RawBin):
            return BinOp(raw.op, self._scalar(raw.left), self._scalar(raw.right))
        if isinstance(raw, RawNot):
            return Not(self._scalar(raw.operand))
        if isinstance(raw, RawFunc):
            return Func(raw.name, [self._scalar(a) for a in raw.args])
        if isinstance(raw, RawIn):
            return InList(self._scalar(raw.operand), _in_choices(raw))
        if isinstance(raw, RawAgg):
            raise SqlError("aggregate used where a scalar expression is required")
        raise SqlError(f"cannot bind expression {raw!r}")

    def _alias_for(self, item: SelectItem, expr: Expr, i: int) -> str:
        if item.alias:
            return item.alias
        if isinstance(expr, Col):
            return expr.name
        return f"col{i}"

    def _output_names(self, plan: LogicalPlan) -> List[str]:
        from ..plan.schema import infer_schema

        return infer_schema(plan, self.catalog).names


def _in_choices(raw: RawIn):
    """IN-list choices: a literal tuple, or a parameter slot (``IN
    :values``) that survives binding and is filled at execution time."""
    if isinstance(raw.choices, RawParam):
        return Param(raw.choices.name)
    return raw.choices


def _split_conjuncts(raw) -> List[object]:
    if raw is None:
        return []
    if isinstance(raw, RawBin) and raw.op == "and":
        return _split_conjuncts(raw.left) + _split_conjuncts(raw.right)
    return [raw]


def _contains_agg(raw) -> bool:
    if raw is None:
        return False
    if isinstance(raw, RawAgg):
        return True
    if isinstance(raw, RawBin):
        return _contains_agg(raw.left) or _contains_agg(raw.right)
    if isinstance(raw, RawNot):
        return _contains_agg(raw.operand)
    if isinstance(raw, RawFunc):
        return any(_contains_agg(a) for a in raw.args)
    if isinstance(raw, RawIn):
        return _contains_agg(raw.operand)
    return False
