"""Recursive-descent SQL parser producing an unbound AST.

The parser resolves nothing: column references stay as
:class:`RawColumn` (with optional qualifier) and aggregate calls as
:class:`RawAgg`; :mod:`repro.sql.binder` turns the AST into a logical
plan against a concrete catalog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

from ..errors import SqlError
from .lexer import Token, tokenize

# -- raw AST -------------------------------------------------------------------


@dataclass(frozen=True)
class RawColumn:
    qualifier: Optional[str]
    name: str


@dataclass(frozen=True)
class RawConst:
    value: object


@dataclass(frozen=True)
class RawParam:
    name: str


@dataclass(frozen=True)
class RawBin:
    op: str
    left: object
    right: object


@dataclass(frozen=True)
class RawNot:
    operand: object


@dataclass(frozen=True)
class RawFunc:
    name: str
    args: Tuple


@dataclass(frozen=True)
class RawIn:
    operand: object
    choices: Tuple


@dataclass(frozen=True)
class RawAgg:
    func: str            # count / sum / avg / min / max / count_distinct
    arg: Optional[object]  # None for COUNT(*)


@dataclass(frozen=True)
class SelectItem:
    expr: object
    alias: Optional[str]
    star: bool = False


@dataclass(frozen=True)
class RawLineageRef:
    """A lineage-consuming FROM item: ``Lb(result, relation [, rids])``
    (rows of ``relation`` contributing to prior result ``result``) or
    ``Lf(relation, result [, rids])`` (rows of ``result`` derived from
    ``relation``).  ``rids`` restricts the traced subset: an int literal,
    a parenthesized int list, or a ``:param``."""

    func: str                  # 'lb' | 'lf'
    result: str                # registered prior-result name
    relation: str              # traced base relation
    rids: object = None        # None | RawParam | tuple of ints


@dataclass(frozen=True)
class TableRef:
    """A FROM item: a named table, a parenthesized derived table, or a
    lineage-consuming table function (``lineage`` set)."""

    table: str                 # name, or "" for derived/lineage items
    alias: str
    subquery: object = None    # SelectStatement / SetStatement for derived
    lineage: object = None     # RawLineageRef for Lb(...) / Lf(...)


@dataclass(frozen=True)
class JoinClause:
    ref: TableRef
    conditions: Tuple[Tuple[RawColumn, RawColumn], ...]  # explicit ON a=b pairs
    comma: bool  # True for a comma-separated FROM item


@dataclass
class SelectStatement:
    items: List[SelectItem]
    distinct: bool
    base: TableRef
    joins: List[JoinClause]
    where: Optional[object]
    group_by: List[object]
    having: Optional[object]
    order_by: List[tuple] = None   # [(output column name, descending)]
    limit: Optional[int] = None


@dataclass
class SetStatement:
    op: str            # union / intersect / except
    all: bool
    left: object
    right: object


Statement = Union[SelectStatement, SetStatement]


def parse(text: str) -> Statement:
    return _Parser(tokenize(text), text).parse_statement()


class _Parser:
    def __init__(self, tokens: List[Token], text: str):
        self.tokens = tokens
        self.text = text
        self.pos = 0

    # -- token helpers -----------------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        self.pos += 1
        return tok

    def expect_kw(self, name: str) -> Token:
        if not self.current.is_kw(name):
            raise SqlError(
                f"expected {name.upper()}, found {self.current.value!r}",
                self.current.position,
            )
        return self.advance()

    def expect_punct(self, value: str) -> Token:
        if not self.current.is_punct(value):
            raise SqlError(
                f"expected {value!r}, found {self.current.value!r}",
                self.current.position,
            )
        return self.advance()

    def accept_kw(self, *names: str) -> Optional[Token]:
        if self.current.is_kw(*names):
            return self.advance()
        return None

    def accept_punct(self, *values: str) -> Optional[Token]:
        if self.current.is_punct(*values):
            return self.advance()
        return None

    # -- grammar --------------------------------------------------------------------

    def parse_statement(self) -> Statement:
        stmt = self.parse_select()
        while self.current.is_kw("union", "intersect", "except"):
            op = self.advance().value
            all_ = self.accept_kw("all") is not None
            right = self.parse_select()
            stmt = SetStatement(op=op, all=all_, left=stmt, right=right)
        self.accept_punct(";")
        if self.current.kind != "eof":
            raise SqlError(
                f"unexpected trailing input {self.current.value!r}",
                self.current.position,
            )
        return stmt

    def parse_select(self) -> SelectStatement:
        self.expect_kw("select")
        distinct = self.accept_kw("distinct") is not None
        items = self._select_list()
        self.expect_kw("from")
        base = self._table_ref()
        joins: List[JoinClause] = []
        while True:
            if self.accept_punct(","):
                joins.append(JoinClause(self._table_ref(), (), comma=True))
                continue
            if self.current.is_kw("join", "inner"):
                self.accept_kw("inner")
                self.expect_kw("join")
                ref = self._table_ref()
                self.expect_kw("on")
                conditions = [self._join_condition()]
                while self.accept_kw("and"):
                    conditions.append(self._join_condition())
                joins.append(JoinClause(ref, tuple(conditions), comma=False))
                continue
            break
        where = self.parse_expr() if self.accept_kw("where") else None
        group_by: List[object] = []
        if self.accept_kw("group"):
            self.expect_kw("by")
            group_by.append(self.parse_expr())
            while self.accept_punct(","):
                group_by.append(self.parse_expr())
        having = self.parse_expr() if self.accept_kw("having") else None
        order_by: List[tuple] = []
        if self.accept_kw("order"):
            self.expect_kw("by")
            order_by.append(self._order_item())
            while self.accept_punct(","):
                order_by.append(self._order_item())
        limit = None
        if self.accept_kw("limit"):
            tok = self.advance()
            if tok.kind != "int":
                raise SqlError("LIMIT expects an integer", tok.position)
            limit = int(tok.value)
        return SelectStatement(
            items=items,
            distinct=distinct,
            base=base,
            joins=joins,
            where=where,
            group_by=group_by,
            having=having,
            order_by=order_by,
            limit=limit,
        )

    def _order_item(self) -> tuple:
        tok = self.advance()
        if tok.kind != "ident":
            raise SqlError(
                "ORDER BY supports output column names", tok.position
            )
        descending = False
        if self.current.is_kw("asc", "desc"):
            descending = self.advance().value == "desc"
        return tok.value, descending

    def _select_list(self) -> List[SelectItem]:
        items = [self._select_item()]
        while self.accept_punct(","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> SelectItem:
        if self.current.is_punct("*"):
            self.advance()
            return SelectItem(expr=None, alias=None, star=True)
        expr = self.parse_expr()
        alias = None
        if self.accept_kw("as"):
            tok = self.advance()
            if tok.kind not in ("ident", "keyword"):
                raise SqlError("expected alias after AS", tok.position)
            alias = tok.value
        elif self.current.kind == "ident":
            alias = self.advance().value
        return SelectItem(expr=expr, alias=alias)

    def _table_ref(self) -> TableRef:
        if self.current.is_lineage_func() and self.tokens[self.pos + 1].is_punct("("):
            return self._lineage_table_ref()
        if self.current.is_punct("("):
            self.advance()
            sub = self.parse_select()
            while self.current.is_kw("union", "intersect", "except"):
                op = self.advance().value
                all_ = self.accept_kw("all") is not None
                sub = SetStatement(op=op, all=all_, left=sub, right=self.parse_select())
            self.expect_punct(")")
            self.accept_kw("as")
            alias_tok = self.advance()
            if alias_tok.kind != "ident":
                raise SqlError(
                    "derived table requires an alias", alias_tok.position
                )
            return TableRef(table="", alias=alias_tok.value, subquery=sub)
        tok = self.advance()
        if tok.kind != "ident":
            raise SqlError(f"expected table name, found {tok.value!r}", tok.position)
        alias = tok.value
        if self.accept_kw("as"):
            alias = self.advance().value
        elif self.current.kind == "ident":
            alias = self.advance().value
        return TableRef(table=tok.value, alias=alias)

    def _lineage_table_ref(self) -> TableRef:
        """``Lb(result, relation [, rids])`` / ``Lf(relation, result [, rids])``."""
        func = self.advance().value.lower()
        self.expect_punct("(")
        if func == "lb":
            result = self._lineage_name("result name")
            self.expect_punct(",")
            relation = self._lineage_name("relation name")
        else:
            relation = self._lineage_name("relation name")
            self.expect_punct(",")
            result = self._lineage_name("result name")
        rids = None
        if self.accept_punct(","):
            rids = self._rid_spec()
        self.expect_punct(")")
        # Default correlation name: the relation whose rows come out — the
        # traced base table for Lb, the prior result for Lf.
        alias = relation if func == "lb" else result
        if self.accept_kw("as"):
            alias = self._alias_ident()
        elif self.current.kind == "ident":
            alias = self.advance().value
        ref = RawLineageRef(func=func, result=result, relation=relation, rids=rids)
        return TableRef(table="", alias=alias, lineage=ref)

    def _lineage_name(self, what: str) -> str:
        """A result/relation argument: a bare identifier or a string."""
        tok = self.advance()
        if tok.kind in ("ident", "string"):
            return tok.value
        raise SqlError(
            f"expected {what} (identifier or string), found {tok.value!r}",
            tok.position,
        )

    def _rid_spec(self):
        """The optional traced-subset argument: ``:param``, an int, or a
        parenthesized int list."""
        tok = self.current
        if tok.kind == "param":
            self.advance()
            return RawParam(tok.value)
        if tok.kind == "int":
            self.advance()
            return (int(tok.value),)
        if tok.is_punct("("):
            self.advance()
            values = [self._rid_int()]
            while self.accept_punct(","):
                values.append(self._rid_int())
            self.expect_punct(")")
            return tuple(values)
        raise SqlError(
            "lineage rid subset must be an int, an int list, or a :param",
            tok.position,
        )

    def _rid_int(self) -> int:
        tok = self.advance()
        if tok.kind != "int":
            raise SqlError("lineage rid lists hold int literals", tok.position)
        return int(tok.value)

    def _alias_ident(self) -> str:
        tok = self.advance()
        if tok.kind != "ident":
            raise SqlError("expected alias identifier after AS", tok.position)
        return tok.value

    def _join_condition(self) -> Tuple[RawColumn, RawColumn]:
        left = self._qualified_column()
        self.expect_punct("=")
        right = self._qualified_column()
        return left, right

    def _qualified_column(self) -> RawColumn:
        tok = self.advance()
        if tok.kind != "ident":
            raise SqlError(f"expected column, found {tok.value!r}", tok.position)
        if self.accept_punct("."):
            col = self.advance()
            if col.kind != "ident":
                raise SqlError("expected column after '.'", col.position)
            return RawColumn(tok.value, col.value)
        return RawColumn(None, tok.value)

    # -- expressions -------------------------------------------------------------------

    def parse_expr(self):
        return self._or_expr()

    def _or_expr(self):
        left = self._and_expr()
        while self.accept_kw("or"):
            left = RawBin("or", left, self._and_expr())
        return left

    def _and_expr(self):
        left = self._not_expr()
        while self.accept_kw("and"):
            left = RawBin("and", left, self._not_expr())
        return left

    def _not_expr(self):
        if self.accept_kw("not"):
            return RawNot(self._not_expr())
        return self._cmp_expr()

    def _cmp_expr(self):
        left = self._add_expr()
        tok = self.current
        if tok.is_punct("=", "<>", "!=", "<", "<=", ">", ">="):
            op = self.advance().value
            if op == "!=":
                op = "<>"
            return RawBin(op, left, self._add_expr())
        if tok.is_kw("between"):
            self.advance()
            lo = self._add_expr()
            self.expect_kw("and")
            hi = self._add_expr()
            return RawBin("and", RawBin(">=", left, lo), RawBin("<=", left, hi))
        if tok.is_kw("in"):
            self.advance()
            return RawIn(left, self._in_choices())
        if tok.is_kw("not"):
            # X NOT IN (...) / NOT BETWEEN
            save = self.pos
            self.advance()
            if self.current.is_kw("in"):
                self.advance()
                return RawNot(RawIn(left, self._in_choices()))
            self.pos = save
        return left

    def _in_choices(self):
        """An IN list: a parenthesized literal list, or a ``:param``
        bound to a value list at execution time (prepared statements)."""
        if self.current.kind == "param":
            return RawParam(self.advance().value)
        self.expect_punct("(")
        choices = [self._literal_value()]
        while self.accept_punct(","):
            choices.append(self._literal_value())
        self.expect_punct(")")
        return tuple(choices)

    def _literal_value(self):
        tok = self.advance()
        if tok.kind == "int":
            return int(tok.value)
        if tok.kind == "float":
            return float(tok.value)
        if tok.kind == "string":
            return tok.value
        raise SqlError(f"expected literal, found {tok.value!r}", tok.position)

    def _add_expr(self):
        left = self._mul_expr()
        while self.current.is_punct("+", "-"):
            op = self.advance().value
            left = RawBin(op, left, self._mul_expr())
        return left

    def _mul_expr(self):
        left = self._unary()
        while self.current.is_punct("*", "/"):
            op = self.advance().value
            left = RawBin(op, left, self._unary())
        return left

    def _unary(self):
        if self.accept_punct("-"):
            return RawBin("-", RawConst(0), self._unary())
        return self._primary()

    def _primary(self):
        tok = self.current
        if tok.kind in ("int", "float", "string"):
            self.advance()
            if tok.kind == "int":
                return RawConst(int(tok.value))
            if tok.kind == "float":
                return RawConst(float(tok.value))
            return RawConst(tok.value)
        if tok.kind == "param":
            self.advance()
            return RawParam(tok.value)
        if tok.is_punct("("):
            self.advance()
            inner = self.parse_expr()
            self.expect_punct(")")
            return inner
        if tok.is_kw("count", "sum", "avg", "min", "max"):
            return self._aggregate()
        if tok.is_kw("extract"):
            return self._extract()
        if tok.is_kw("sqrt", "abs", "floor"):
            name = self.advance().value
            self.expect_punct("(")
            arg = self.parse_expr()
            self.expect_punct(")")
            return RawFunc(name, (arg,))
        if tok.kind == "ident":
            return self._qualified_column()
        raise SqlError(f"unexpected token {tok.value!r}", tok.position)

    def _aggregate(self):
        func = self.advance().value
        self.expect_punct("(")
        if func == "count":
            if self.accept_punct("*"):
                self.expect_punct(")")
                return RawAgg("count", None)
            if self.accept_kw("distinct"):
                arg = self.parse_expr()
                self.expect_punct(")")
                return RawAgg("count_distinct", arg)
        arg = self.parse_expr()
        self.expect_punct(")")
        return RawAgg(func, arg)

    def _extract(self):
        self.advance()
        self.expect_punct("(")
        part = self.advance()
        if not part.is_kw("year", "month"):
            raise SqlError("EXTRACT supports YEAR and MONTH", part.position)
        self.expect_kw("from")
        arg = self.parse_expr()
        self.expect_punct(")")
        return RawFunc(part.value, (arg,))
