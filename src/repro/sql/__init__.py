"""SQL front end: lexer, parser, binder."""

from .binder import bind, parse_sql
from .parser import parse

__all__ = ["bind", "parse", "parse_sql"]
