"""Repo-specific invariant linter (``python -m tools.lint src benchmarks``).

Smoke's correctness rests on cross-cutting invariants that generic
linters cannot see: lineage may only be composed through the shared
folds, handed-out rid arrays are read-only, timings counters must be
spelled from one registry, exceptions must come from the ``errors.py``
taxonomy, catalog reads in executor code must carry epochs, internal
callers must not use the deprecated ``ExecOptions`` kwarg shims, and
durable-path modules must write files only through the fsync/rename
helpers.  Each rule in :mod:`tools.lint.rules` machine-checks one of
them over the stdlib ``ast`` — no third-party dependencies.

Suppression
-----------
A violation can be waived per line with an inline comment::

    something_flagged()  # repro: noqa RPR004 -- why this site is exempt

The justification after ``--`` is mandatory; a bare ``repro: noqa``
(with or without codes) is itself reported as ``RPR000``, so blanket
suppressions cannot accumulate silently.  Multiple codes separate with
commas: ``# repro: noqa RPR001,RPR003 -- reason``.

Exit status: 0 when no violations, 1 otherwise (2 for usage errors).
"""

from __future__ import annotations

import ast
import io
import sys
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Sequence, Set, Tuple

#: Code reporting malformed suppressions (not a rule — the meta-check
#: that keeps every ``repro: noqa`` justified and targeted).
BAD_NOQA = "RPR000"

_NOQA_MARKER = "repro:"


@dataclass(frozen=True)
class Violation:
    """One reported lint finding."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.code} {self.message}"


@dataclass(frozen=True)
class Suppression:
    """A parsed ``# repro: noqa`` comment on one physical line."""

    line: int
    codes: Tuple[str, ...]  # empty tuple = malformed (no codes given)
    justified: bool


class FileContext:
    """Everything the rules need to know about one source file."""

    def __init__(self, path: Path, display: str, source: str, tree: ast.Module):
        self.path = path
        self.display = display
        self.source = source
        self.tree = tree

    @property
    def posix(self) -> str:
        return self.path.as_posix()

    def in_dir(self, *fragments: str) -> bool:
        """True when the file lives under any of the given path fragments
        (``"src/repro/exec/"`` style, matched on the posix path)."""
        posix = self.posix
        return any(frag in posix for frag in fragments)

    def is_file(self, *suffixes: str) -> bool:
        """True when the posix path ends with any of the given suffixes."""
        posix = self.posix
        return any(posix.endswith(sfx) for sfx in suffixes)


def parse_suppressions(source: str) -> Dict[int, Suppression]:
    """Extract ``# repro: noqa`` comments per physical line via tokenize
    (comments are invisible to ``ast``)."""
    found: Dict[int, Suppression] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [t for t in tokens if t.type == tokenize.COMMENT]
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return found
    for tok in comments:
        text = tok.string.lstrip("#").strip()
        if not text.startswith(_NOQA_MARKER):
            continue
        rest = text[len(_NOQA_MARKER):].strip()
        if not rest.lower().startswith("noqa"):
            continue
        rest = rest[4:].strip()
        justified = "--" in rest
        code_part = rest.split("--", 1)[0]
        codes = tuple(
            c.strip().upper()
            for c in code_part.replace(",", " ").split()
            if c.strip()
        )
        found[tok.start[0]] = Suppression(tok.start[0], codes, justified)
    return found


def _apply_suppressions(
    violations: List[Violation],
    suppressions: Dict[int, Suppression],
    display: str,
) -> List[Violation]:
    """Drop violations waived by a well-formed noqa on their line; report
    malformed or code-less noqa comments as RPR000."""
    kept: List[Violation] = []
    used: Set[int] = set()
    for v in violations:
        sup = suppressions.get(v.line)
        if sup is not None and sup.justified and v.code in sup.codes:
            used.add(sup.line)
            continue
        kept.append(v)
    for line, sup in sorted(suppressions.items()):
        if not sup.codes:
            kept.append(
                Violation(
                    display, line, 0, BAD_NOQA,
                    "repro: noqa must name the codes it waives "
                    "(e.g. '# repro: noqa RPR004 -- reason')",
                )
            )
        elif not sup.justified:
            kept.append(
                Violation(
                    display, line, 0, BAD_NOQA,
                    "repro: noqa needs a justification after '--' "
                    f"(waives {', '.join(sup.codes)})",
                )
            )
    kept.sort(key=lambda v: (v.line, v.col, v.code))
    return kept


def lint_source(
    source: str, path: Path, display: str | None = None
) -> List[Violation]:
    """Lint one file's source text (the unit-test entry point)."""
    from .rules import ALL_RULES

    display = display or path.as_posix()
    try:
        tree = ast.parse(source, filename=display)
    except SyntaxError as exc:
        return [
            Violation(
                display, exc.lineno or 1, (exc.offset or 1) - 1,
                "RPR999", f"syntax error: {exc.msg}",
            )
        ]
    ctx = FileContext(path, display, source, tree)
    violations: List[Violation] = []
    for rule in ALL_RULES:
        if not rule.applies(ctx):
            continue
        for line, col, message in rule.check(ctx):
            violations.append(Violation(display, line, col, rule.code, message))
    return _apply_suppressions(violations, parse_suppressions(source), display)


def iter_python_files(paths: Sequence[str], root: Path) -> Iterator[Path]:
    for entry in paths:
        p = (root / entry) if not Path(entry).is_absolute() else Path(entry)
        if p.is_file() and p.suffix == ".py":
            yield p
        elif p.is_dir():
            yield from sorted(p.rglob("*.py"))


def run(paths: Sequence[str], root: Path | None = None) -> List[Violation]:
    """Lint every ``.py`` file under the given paths; returns findings."""
    root = root or Path.cwd()
    violations: List[Violation] = []
    for path in iter_python_files(paths, root):
        try:
            display = path.relative_to(root).as_posix()
        except ValueError:
            display = path.as_posix()
        source = path.read_text(encoding="utf-8")
        violations.extend(lint_source(source, Path(display), display))
    return violations


def main(argv: Sequence[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0
    if argv and argv[0] == "--list-rules":
        from .rules import ALL_RULES

        for rule in ALL_RULES:
            summary = (rule.__doc__ or "").strip().splitlines()[0]
            print(f"{rule.code} {rule.name}: {summary}")
        return 0
    if not argv:
        print("usage: python -m tools.lint <path> [<path> ...]", file=sys.stderr)
        return 2
    violations = run(argv)
    for v in violations:
        print(v.render())
    if violations:
        print(f"{len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0
