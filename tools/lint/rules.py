"""The seven repo-specific AST rules (see package docstring for noqa).

Every rule carries its error code, the invariant it enforces, and an
autofix hint in its docstring; ``python -m tools.lint --list-rules``
prints the summary lines.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

Finding = Tuple[int, int, str]

#: Builtin exception names banned at raise sites inside ``src/repro``
#: (RPR004).  ``NotImplementedError`` stays allowed: it marks abstract
#: methods, which is a programming-contract signal, not a library error.
BUILTIN_EXCEPTIONS = frozenset(
    {
        "ArithmeticError",
        "AssertionError",
        "AttributeError",
        "BaseException",
        "BufferError",
        "EOFError",
        "Exception",
        "IOError",
        "IndexError",
        "KeyError",
        "LookupError",
        "OSError",
        "OverflowError",
        "RuntimeError",
        "StopIteration",
        "TypeError",
        "ValueError",
        "ZeroDivisionError",
    }
)

#: The ExecOptions deprecation-shim kwargs (RPR006); internal callers
#: must pass ``options=ExecOptions(...)`` instead.
DEPRECATED_EXEC_KWARGS = frozenset(
    {"capture", "backend", "name", "pin", "late_materialize"}
)

#: In-place ndarray methods flagged on handout arrays (RPR002).
INPLACE_METHODS = frozenset({"sort", "resize", "fill", "partition", "byteswap"})


def dotted(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` chains of Names/Attributes; None for anything else."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_np_arange(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and dotted(node.func) in ("np.arange", "numpy.arange")
    )


class Rule:
    """Base: a code, a path scope, and an AST check."""

    code: str = ""
    name: str = ""

    def applies(self, ctx) -> bool:
        raise NotImplementedError

    def check(self, ctx) -> Iterator[Finding]:
        raise NotImplementedError


class LineageComposeOnly(Rule):
    """Executor/late_mat code must build lineage via the shared folds.

    Invariant: :class:`~repro.lineage.composer.NodeLineage` index maps are
    constructed and combined only through ``compose_node`` /
    ``merge_binary`` / ``absorb`` / ``for_traced_scan`` /
    ``selection_locals`` / ``invert_rid_index`` — never by subscripting
    ``.backward`` / ``.forward`` directly or by hand-rolled
    scatter-assignment (``out[rids] = np.arange(...)``), the exact bug
    class of the PR-4 seed defect (compiled group-by scattering forward
    lineage into a 1-to-1 array where fan-out silently overwrites).

    Autofix hint: move the construction into
    ``src/repro/lineage/composer.py`` (or
    :func:`repro.lineage.indexes.scatter_forward`) and call the fold.
    """

    code = "RPR001"
    name = "lineage-compose-only"

    SCOPE = (
        "src/repro/exec/late_mat.py",
        "src/repro/exec/lineage_scan.py",
        "src/repro/exec/vector/executor.py",
        "src/repro/exec/compiled/executor.py",
    )

    def applies(self, ctx) -> bool:
        return ctx.is_file(*self.SCOPE)

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
                if (
                    len(targets) == 1
                    and isinstance(targets[0], ast.Subscript)
                    and _is_np_arange(node.value)
                ):
                    yield (
                        node.lineno, node.col_offset,
                        "scatter-assignment of np.arange into a subscript; "
                        "use repro.lineage.indexes.scatter_forward / "
                        "composer.selection_locals",
                    )
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = list(node.targets)
            for target in targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Attribute)
                    and target.value.attr in ("backward", "forward")
                ):
                    yield (
                        target.lineno, target.col_offset,
                        f"direct mutation of NodeLineage .{target.value.attr} "
                        "map; use the composer folds (compose_node / "
                        "merge_binary / absorb / for_traced_scan / "
                        "drop_setop_right_indexes)",
                    )


class NoInplaceOnHandout(Rule):
    """No in-place numpy ops on arrays handed out by caches/registries.

    Invariant: arrays returned by ``GrowableRidVector.view()`` /
    ``GrowableRidIndex.bucket()``, ``LineageResolutionCache.resolve()``,
    and ``resolve_scan_source`` are *shared* (zero-copy views or memoized
    entries, ``storage/growable.py`` and ``lineage/cache.py``); consumers
    must gather through them (fancy indexing copies), never mutate.  The
    read-only flag catches this at runtime only when ``REPRO_SANITIZE=1``;
    this rule catches it at review time.

    Autofix hint: copy first (``arr = handout.copy()``) or use an
    out-of-place op (``np.sort(arr)`` instead of ``arr.sort()``).
    """

    code = "RPR002"
    name = "no-inplace-on-handout"

    def applies(self, ctx) -> bool:
        return True

    def _handout_names(self, fn: ast.AST) -> Set[str]:
        names: Set[str] = set()
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
                attr = value.func.attr
                receiver = dotted(value.func.value) or ""
                handed_out = (
                    attr in ("view", "bucket")
                    or (attr == "resolve" and "cache" in receiver.lower())
                )
                if handed_out:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "resolve_scan_source"
            ):
                for target in node.targets:
                    if isinstance(target, ast.Tuple) and len(target.elts) >= 2:
                        second = target.elts[1]
                        if isinstance(second, ast.Name):
                            names.add(second.id)
        return names

    def check(self, ctx) -> Iterator[Finding]:
        scopes = [ctx.tree] + [
            n
            for n in ast.walk(ctx.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for scope in scopes:
            handouts = self._handout_names(scope)
            if not handouts:
                continue
            body = scope.body if isinstance(scope, ast.Module) else scope.body
            for node in ast.walk(ast.Module(body=list(body), type_ignores=[])):
                yield from self._check_node(node, handouts)

    def _check_node(self, node: ast.AST, handouts: Set[str]) -> Iterator[Finding]:
        def is_handout(expr: ast.AST) -> bool:
            return isinstance(expr, ast.Name) and expr.id in handouts

        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Subscript) and is_handout(target.value):
                    yield (
                        target.lineno, target.col_offset,
                        f"in-place write into handout array "
                        f"{target.value.id!r}; copy before mutating",
                    )
        elif isinstance(node, ast.AugAssign):
            target = node.target
            base = target.value if isinstance(target, ast.Subscript) else target
            if is_handout(base):
                yield (
                    node.lineno, node.col_offset,
                    "augmented assignment mutates a handout array in place; "
                    "copy before mutating",
                )
        elif isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in INPLACE_METHODS and is_handout(node.func.value):
                yield (
                    node.lineno, node.col_offset,
                    f".{node.func.attr}() mutates a handout array in place; "
                    f"use the out-of-place variant (np.{node.func.attr}) "
                    "or copy first",
                )


class TimingsRegistry(Rule):
    """Timings keys must come from the ``repro.exec.timings`` registry.

    Invariant: every read or write of an ``ExecResult.timings`` entry
    spells its key via a constant from ``src/repro/exec/timings.py``.
    String literals at these sites are how typo'd counters silently
    vanish from BENCH gates (the gate reads ``None``/``0`` and measures
    nothing).

    Autofix hint: add/import the constant from ``repro.exec.timings``
    (e.g. ``timings[LATE_MAT_JOINS]`` instead of
    ``timings["late_mat_joins"]``).
    """

    code = "RPR003"
    name = "timings-registry"

    def applies(self, ctx) -> bool:
        return not ctx.is_file("src/repro/exec/timings.py")

    @staticmethod
    def _is_timings(expr: ast.AST) -> bool:
        if isinstance(expr, ast.Name):
            return expr.id == "timings"
        if isinstance(expr, ast.Attribute):
            return expr.attr == "timings"
        return False

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Subscript) and self._is_timings(node.value):
                key = node.slice
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    yield (
                        node.lineno, node.col_offset,
                        f"string-literal timings key {key.value!r}; use a "
                        "repro.exec.timings constant",
                    )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "get"
                and self._is_timings(node.func.value)
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                yield (
                    node.lineno, node.col_offset,
                    f"string-literal timings key {node.args[0].value!r} in "
                    ".get(); use a repro.exec.timings constant",
                )
            elif isinstance(node, ast.Assign) and any(
                self._is_timings(t) for t in node.targets
            ):
                if isinstance(node.value, ast.Dict):
                    for key in node.value.keys:
                        if isinstance(key, ast.Constant) and isinstance(
                            key.value, str
                        ):
                            yield (
                                key.lineno, key.col_offset,
                                f"string-literal timings key {key.value!r} in "
                                "dict literal; use a repro.exec.timings "
                                "constant",
                            )


class ReproErrorsOnly(Rule):
    """``raise`` sites in src/repro must use the errors.py taxonomy.

    Invariant: library failures derive from
    :class:`repro.errors.ReproError` so callers can catch library
    problems without catching programming errors (``errors.py``).  Bare
    builtin raises (``ValueError``, ``RuntimeError``, ...) leak
    un-catchable failure modes into the public surface.
    ``NotImplementedError`` (abstract methods) and re-raises are exempt.

    Autofix hint: pick (or add) the matching ``ReproError`` subclass —
    argument-domain mistakes map to ``InvalidArgumentError``.
    """

    code = "RPR004"
    name = "repro-errors-only"

    def applies(self, ctx) -> bool:
        return ctx.in_dir("src/repro/")

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = None
            if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
                name = exc.func.id
            elif isinstance(exc, ast.Name):
                name = exc.id
            if name in BUILTIN_EXCEPTIONS:
                yield (
                    node.lineno, node.col_offset,
                    f"raise of builtin {name}; use the repro.errors taxonomy "
                    "(e.g. InvalidArgumentError for bad argument domains)",
                )


class EpochThreading(Rule):
    """Catalog reads in exec/ and lineage/ must carry epochs.

    Invariant: executor and lineage code reads tables together with
    their replacement epoch
    (:meth:`repro.storage.catalog.Catalog.get_versioned`) so captured
    lineage records the epoch it indexed and consumers can reject stale
    rids.  A naked ``catalog.get(name)`` / ``catalog.resolve(name)``
    there reads a table whose identity can drift under the lineage that
    points at it.  (Binder/planner code outside exec//lineage/ may use
    ``get`` — schema inference holds no rids.)

    Autofix hint: ``table, epoch = catalog.get_versioned(name)`` and
    thread the epoch into the scan's ``NodeLineage``.
    """

    code = "RPR005"
    name = "epoch-threading"

    def applies(self, ctx) -> bool:
        return ctx.in_dir("src/repro/exec/", "src/repro/lineage/")

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("get", "resolve")
            ):
                continue
            receiver = dotted(node.func.value)
            if receiver == "catalog" or (receiver or "").endswith(".catalog"):
                yield (
                    node.lineno, node.col_offset,
                    f"naked catalog.{node.func.attr}() in epoch-sensitive "
                    "code; use catalog.get_versioned(name) and thread the "
                    "epoch",
                )


class NoDeprecatedExecKwargs(Rule):
    """Internal callers must not use the ExecOptions deprecation shims.

    Invariant: ``Database.sql`` / ``Database.execute`` accept legacy
    loose kwargs (``capture=``, ``backend=``, ``name=``, ``pin=``,
    ``late_materialize=``) only as a migration shim that warns once per
    call site; library and benchmark code must pass
    ``options=ExecOptions(...)`` so the shim can eventually be deleted.

    Autofix hint: wrap the kwargs:
    ``db.sql(stmt, options=ExecOptions(capture=..., name=...))``.
    """

    code = "RPR006"
    name = "no-deprecated-exec-kwargs"

    #: ``.execute`` is only the Database entry point when called on a
    #: database-ish receiver; executor.execute's ``late_materialize`` is
    #: a real parameter, not a shim.
    EXECUTE_RECEIVERS = ("db", "database")

    def applies(self, ctx) -> bool:
        return True

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("sql", "execute")
            ):
                continue
            if node.func.attr == "execute":
                receiver = (dotted(node.func.value) or "").split(".")[-1]
                if receiver not in self.EXECUTE_RECEIVERS:
                    continue
            bad = sorted(
                kw.arg
                for kw in node.keywords
                if kw.arg in DEPRECATED_EXEC_KWARGS
            )
            if bad:
                yield (
                    node.lineno, node.col_offset,
                    f"deprecated loose exec kwarg(s) {', '.join(bad)}; pass "
                    "options=ExecOptions(...)",
                )


class DurableWritesOnly(Rule):
    """Durable-path file writes must go through the fsync helpers.

    Invariant: modules on the durability path (``lineage/wal.py``,
    ``lineage/persist.py``) never open a file for writing directly — a
    bare ``open(path, "wb")`` / ``os.open(..., O_WRONLY)`` write is
    exactly the torn-on-crash, never-fsynced pattern the WAL exists to
    prevent.  All writes flow through ``durable_atomic_write`` (temp +
    fsync + rename), ``durable_open_append`` (the WAL's append handle),
    or ``durable_truncate`` — the helpers that own the fsync discipline
    and carry their own audited ``noqa`` markers.

    Autofix hint: call ``repro.lineage.wal.durable_atomic_write(path,
    data)`` (whole-file artifacts) or extend the helper set; never
    inline an ``open`` in durable code.
    """

    code = "RPR007"
    name = "durable-writes-only"

    SCOPE = (
        "src/repro/lineage/wal.py",
        "src/repro/lineage/persist.py",
    )

    #: open()/io.open() mode characters that make a handle writable.
    WRITE_MODE_CHARS = frozenset("wax+")

    def applies(self, ctx) -> bool:
        return ctx.is_file(*self.SCOPE)

    @staticmethod
    def _open_mode(node: ast.Call) -> Optional[str]:
        """The mode string of an open()/io.open() call, '' when omitted,
        None when not statically known."""
        if len(node.args) >= 2:
            mode = node.args[1]
        else:
            mode = next(
                (kw.value for kw in node.keywords if kw.arg == "mode"), None
            )
        if mode is None:
            return ""
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value
        return None

    def check(self, ctx) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            callee = dotted(node.func)
            if callee in ("open", "io.open"):
                mode = self._open_mode(node)
                if mode is None or self.WRITE_MODE_CHARS & set(mode):
                    shown = "dynamic" if mode is None else repr(mode)
                    yield (
                        node.lineno, node.col_offset,
                        f"writable open(mode={shown}) on the durable path; "
                        "use durable_atomic_write / durable_open_append / "
                        "durable_truncate (which own the fsync discipline)",
                    )
            elif callee in ("os.open", "os.fdopen"):
                yield (
                    node.lineno, node.col_offset,
                    f"{callee}() on the durable path; use the durable_* "
                    "helpers (which own the fsync discipline)",
                )


ALL_RULES: List[Rule] = [
    LineageComposeOnly(),
    NoInplaceOnHandout(),
    TimingsRegistry(),
    ReproErrorsOnly(),
    EpochThreading(),
    NoDeprecatedExecKwargs(),
    DurableWritesOnly(),
]
