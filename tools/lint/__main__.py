"""CLI entry point: ``python -m tools.lint src benchmarks``."""

import sys

from . import main

sys.exit(main())
