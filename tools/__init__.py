"""Repository maintenance tooling (not part of the ``repro`` library)."""
