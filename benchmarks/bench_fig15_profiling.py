"""Figure 15: FD-violation profiling latency.

Paper shape: Smoke-CD fastest; Smoke-UG beats the Metanome-UG simulation
(string-typed values + per-edge virtual calls) by 2-6x.
"""

import pytest

from repro.apps.profiler import TECHNIQUES, check_fd
from repro.datagen import FDS


@pytest.mark.parametrize("fd", FDS, ids=lambda fd: f"{fd[0]}->{fd[1]}")
@pytest.mark.parametrize("technique", sorted(TECHNIQUES))
def test_fig15_fd_check(benchmark, physician_db, fd, technique):
    determinant, dependent = fd
    benchmark.pedantic(
        lambda: check_fd(physician_db, "physician", determinant, dependent, technique),
        rounds=2,
        iterations=1,
    )
