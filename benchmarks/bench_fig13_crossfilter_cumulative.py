"""Figure 13: crossfilter cumulative latency (build + all interactions).

Paper shape: BT+FT completes the whole benchmark before the data cube
finishes building; Lazy is slowest per interaction.
"""

import pytest

from repro.apps.crossfilter import CrossfilterSession
from repro.bench.experiments.fig13_crossfilter import run_session
from repro.datagen import VIEW_DIMENSIONS


@pytest.mark.parametrize("technique", CrossfilterSession.TECHNIQUES)
def test_fig13_cumulative(benchmark, ontime_table, technique):
    benchmark.pedantic(
        lambda: run_session(ontime_table, technique, max_per_view=30),
        rounds=2,
        iterations=1,
    )
