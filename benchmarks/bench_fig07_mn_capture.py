"""Figure 7: m:n join capture latency (rid-array resizing).

Paper shape: Smoke-D <= Smoke-D-DeferForw <= Smoke-I; deferring avoids
up to 2.65x of resizing overhead under skew.
"""

import pytest

from conftest import ROUNDS

from repro.bench.experiments.fig07_mn import TECHNIQUES, capture, make_tables
from repro.bench.harness import scaled


@pytest.fixture(scope="module", params=[10, 100], ids=["10-left-groups", "100-left-groups"])
def mn_tables(request):
    return make_tables(request.param, scaled(50_000))


@pytest.mark.parametrize("technique", TECHNIQUES)
def test_fig07_capture(benchmark, mn_tables, technique):
    left, right = mn_tables
    benchmark.pedantic(lambda: capture(left, right, technique), **ROUNDS)
