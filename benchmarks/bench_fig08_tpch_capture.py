"""Figure 8: TPC-H multi-operator capture overhead.

Paper shape: Smoke-I <= 22% overhead on Q1/Q3/Q10/Q12; Logic-Idx up to
511% (Q1, whose high selectivity maximizes denormalization).
"""

import pytest

from conftest import ROUNDS

from repro.bench.techniques import CAPTURE_TECHNIQUES
from repro.tpch import ALL_QUERIES

QUERIES = sorted(ALL_QUERIES)
TECHNIQUES = ["baseline", "smoke-i", "smoke-d", "logic-idx"]


@pytest.mark.parametrize("query", QUERIES)
@pytest.mark.parametrize("technique", TECHNIQUES)
def test_fig08_capture(benchmark, tpch_bench_db, query, technique):
    plan = ALL_QUERIES[query]()
    runner = CAPTURE_TECHNIQUES[technique]
    benchmark.pedantic(lambda: runner(tpch_bench_db, plan), **ROUNDS)
