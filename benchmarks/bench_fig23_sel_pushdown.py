"""Figure 23 (G.2): selection push-down capture cost vs selectivity.

Paper shape: push-down cheaper than plain capture at low selectivity;
crosses over around 75% where per-row predicate evaluation dominates.
"""

import pytest

from conftest import ROUNDS

from repro.bench.experiments.fig23_selpush import run_mode

MODES = ["baseline", "smoke-i", "pushdown"]


@pytest.mark.parametrize("threshold", [0.01, 0.07])
@pytest.mark.parametrize("mode", MODES)
def test_fig23_pushdown_capture(benchmark, tpch_bench_db, threshold, mode):
    benchmark.pedantic(
        lambda: run_mode(tpch_bench_db, threshold, mode), **ROUNDS
    )
