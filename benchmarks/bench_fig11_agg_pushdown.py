"""Figure 11: aggregation push-down consuming-query latency.

Paper shape: push-down ~0ms (materialized cube rows) << index scan +
re-aggregation << lazy full scans (seconds at paper scale).
"""

import pytest

from conftest import ROUNDS

from repro.bench.experiments.fig11_aggpush import STRATEGIES, make_context
from repro.bench.experiments.fig10_skipping import parameter_combinations


@pytest.fixture(scope="module")
def ctx():
    return make_context()


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_fig11_consuming_query(benchmark, ctx, strategy):
    fn = STRATEGIES[strategy]
    combos = parameter_combinations(2)

    def run():
        for bar in range(len(ctx["opt"].table)):
            for p1, p2 in combos:
                fn(ctx, bar, p1, p2)

    benchmark.pedantic(run, **ROUNDS)
