"""Benchmark-suite fixtures: shared datasets built once per session.

Sizes honour REPRO_SCALE (default 1.0 ~= laptop-CI scale; the paper's
datasets are 10-100x larger).  Each bench module parametrizes over the
technique axis of its paper figure and runs a bounded number of rounds so
the whole suite completes in minutes.
"""

import pytest

from repro.api import Database
from repro.bench.harness import scaled
from repro.datagen import (
    load_tpch,
    make_gids_table,
    make_ontime_table,
    make_physician_table,
    make_zipf_table,
)

ROUNDS = dict(rounds=3, iterations=1, warmup_rounds=1)
SLOW_ROUNDS = dict(rounds=2, iterations=1, warmup_rounds=0)


@pytest.fixture(scope="session")
def zipf_db():
    db = Database()
    db.create_table("zipf", make_zipf_table(scaled(100_000), 1_000, theta=1.0))
    db.create_table("gids", make_gids_table(1_000))
    return db


@pytest.fixture(scope="session")
def zipf_db_many_groups():
    db = Database()
    db.create_table("zipf", make_zipf_table(scaled(100_000), 10_000, theta=1.0))
    db.create_table("gids", make_gids_table(10_000))
    return db


@pytest.fixture(scope="session")
def tpch_bench_db():
    from repro.bench.harness import scale

    db = Database()
    load_tpch(db, scale_factor=0.1 * scale())
    return db


@pytest.fixture(scope="session")
def ontime_table():
    return make_ontime_table(scaled(200_000))


@pytest.fixture(scope="session")
def physician_db():
    data = make_physician_table(scaled(100_000))
    db = Database()
    db.create_table("physician", data.table)
    return db
