"""Figure 5: group-by aggregation lineage capture latency.

Paper shape: Smoke-I/Smoke-D track the Baseline; Logic-Rid/Logic-Tup pay
for the denormalized lineage graph; Phys-Mem pays a call per edge and
Phys-Bdb an external-subsystem call per edge (worst by far).
"""

import pytest

from conftest import ROUNDS, SLOW_ROUNDS

from repro.bench.experiments.fig05_groupby import microbenchmark_query
from repro.bench.techniques import CAPTURE_TECHNIQUES

FAST = ["baseline", "smoke-i", "smoke-d", "logic-rid", "logic-tup", "logic-idx"]
SLOW = ["phys-mem", "phys-bdb"]


@pytest.mark.parametrize("technique", FAST)
def test_fig05_capture(benchmark, zipf_db, technique):
    plan = microbenchmark_query()
    runner = CAPTURE_TECHNIQUES[technique]
    benchmark.pedantic(lambda: runner(zipf_db, plan), **ROUNDS)


@pytest.mark.parametrize("technique", FAST)
def test_fig05_capture_many_groups(benchmark, zipf_db_many_groups, technique):
    plan = microbenchmark_query()
    runner = CAPTURE_TECHNIQUES[technique]
    benchmark.pedantic(lambda: runner(zipf_db_many_groups, plan), **ROUNDS)


@pytest.mark.parametrize("technique", SLOW)
def test_fig05_capture_physical(benchmark, zipf_db, technique):
    plan = microbenchmark_query()
    runner = CAPTURE_TECHNIQUES[technique]
    benchmark.pedantic(lambda: runner(zipf_db, plan), **SLOW_ROUNDS)
