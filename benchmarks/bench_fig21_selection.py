"""Figure 21 (G.1): selection capture with selectivity estimates.

Paper shape: estimates (Smoke-I-EC) cut overhead ~0.4x -> ~0.15x;
under-estimation re-introduces resizing.
"""

import pytest

from conftest import ROUNDS

from repro.bench.experiments.fig21_selection import make_database, run_technique

TECHNIQUES = ["baseline", "smoke-i", "smoke-i-ec"]


@pytest.fixture(scope="module")
def db():
    return make_database()


@pytest.mark.parametrize("selectivity", [5.0, 50.0])
@pytest.mark.parametrize("technique", TECHNIQUES)
def test_fig21_selection_capture(benchmark, db, selectivity, technique):
    benchmark.pedantic(
        lambda: run_technique(db, selectivity, technique), **ROUNDS
    )
