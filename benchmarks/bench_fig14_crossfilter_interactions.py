"""Figure 14: per-interaction crossfilter latency per view.

Paper shape: BT+FT under the 150ms threshold for all but a handful of
very-high-lineage bars; spatiotemporal views respond <10ms.

Beyond the paper's four hand-rolled techniques, three declarative axes
run the BT interaction as lineage-consuming SQL over registered views
(``CrossfilterSession.from_database``):

* ``sql-prepared`` — the prepared/session path: per-view statements are
  parsed/bound/rewritten once, ``:bars`` binds into the cached plan, and
  the session's :class:`~repro.lineage.cache.LineageResolutionCache`
  resolves each brush's rid set once across all views;
* ``sql-pushed`` — one-shot statements per interaction, with the
  late-materializing rewrite executing each re-aggregation in the rid
  domain (:mod:`repro.plan.rewrite`);
* ``sql-materialized`` — the same one-shot statements with the rewrite
  disabled, i.e. the PR-1 materialize-then-scan baseline.

Comparing those against ``bt`` shows how close crossfilter-over-SQL gets
to the hand-rolled kernels: pushing materialization away closes most of
the gap, and preparing the statements (this PR) closes most of the rest
on repeated-brush traffic.
"""

import pytest

from conftest import ROUNDS

from repro.api import Database
from repro.apps.crossfilter import CrossfilterSession
from repro.datagen import VIEW_DIMENSIONS

TECHNIQUES = (
    "lazy", "bt", "bt+ft", "cube",
    "sql-prepared", "sql-pushed", "sql-materialized",
)


@pytest.fixture(scope="module")
def sessions(ontime_table):
    built = {
        t: CrossfilterSession(ontime_table, VIEW_DIMENSIONS, t)
        for t in ("lazy", "bt", "bt+ft", "cube")
    }
    db = Database()
    db.create_table("ontime", ontime_table)
    built["sql-prepared"] = CrossfilterSession.from_database(
        db, "ontime", VIEW_DIMENSIONS, "bt", late_materialize=True,
        prepared=True,
    )
    built["sql-pushed"] = CrossfilterSession.from_database(
        db, "ontime", VIEW_DIMENSIONS, "bt", late_materialize=True,
        prepared=False,
    )
    built["sql-materialized"] = CrossfilterSession.from_database(
        db, "ontime", VIEW_DIMENSIONS, "bt", late_materialize=False,
        prepared=False,
    )
    return built


@pytest.mark.parametrize("technique", TECHNIQUES)
@pytest.mark.parametrize("dimension", list(VIEW_DIMENSIONS))
def test_fig14_single_interaction(benchmark, sessions, technique, dimension):
    session = sessions[technique]
    bars = session.views[dimension].num_bars

    def run():
        session.brush(dimension, 0)          # heaviest bar (zipf rank 1)
        session.brush(dimension, bars - 1)   # lightest bar

    benchmark.pedantic(run, **ROUNDS)
