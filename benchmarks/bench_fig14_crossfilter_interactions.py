"""Figure 14: per-interaction crossfilter latency per view.

Paper shape: BT+FT under the 150ms threshold for all but a handful of
very-high-lineage bars; spatiotemporal views respond <10ms.

Beyond the paper's four hand-rolled techniques, three declarative axes
run the BT interaction as lineage-consuming SQL over registered views
(``CrossfilterSession.from_database``):

* ``sql-prepared`` — the prepared/session path: per-view statements are
  parsed/bound/rewritten once, ``:bars`` binds into the cached plan, and
  the session's :class:`~repro.lineage.cache.LineageResolutionCache`
  resolves each brush's rid set once across all views;
* ``sql-pushed`` — one-shot statements per interaction, with the
  late-materializing rewrite executing each re-aggregation in the rid
  domain (:mod:`repro.plan.rewrite`);
* ``sql-materialized`` — the same one-shot statements with the rewrite
  disabled, i.e. the PR-1 materialize-then-scan baseline.

Two further axes add a *star-schema* view (``carrier_region``: the
carrier's region, an attribute of a joined ``carriers`` lookup table).
Every brush then updates that view with a join-shaped lineage-consuming
statement — ``GROUP BY`` over ``Lb(view, 'ontime', :bars) JOIN
carriers`` — which the rewrite pushes *through the join*:

* ``sql-pushed-join`` — prepared sessions with the joined view on the
  late-materializing path (narrow key probe, payload gathered at
  matching rows only);
* ``sql-materialized-join`` — identical prepared sessions with only the
  rewrite disabled, so the axis pair isolates the join push itself:
  every join-shaped interaction materializes the full-width traced
  subset before joining.

Comparing those against ``bt`` shows how close crossfilter-over-SQL gets
to the hand-rolled kernels: pushing materialization away closes most of
the gap, and preparing the statements closes most of the rest on
repeated-brush traffic.
"""

import numpy as np
import pytest

from conftest import ROUNDS

from repro.api import Database
from repro.apps.crossfilter import CrossfilterSession, DimensionJoin
from repro.datagen import VIEW_DIMENSIONS
from repro.datagen.ontime import NUM_CARRIERS
from repro.storage import Table

TECHNIQUES = (
    "lazy", "bt", "bt+ft", "cube",
    "sql-prepared", "sql-pushed", "sql-materialized",
    "sql-pushed-join", "sql-materialized-join",
)

#: The star-schema axes' dimensions: the four fact views plus a view
#: binned on the joined carriers.region attribute.
JOIN_DIMENSIONS = VIEW_DIMENSIONS + ("carrier_region",)
CARRIER_JOIN = {
    "carrier_region": DimensionJoin(
        "carriers", "carrier", "carrier_id", "region"
    )
}


@pytest.fixture(scope="module")
def sessions(ontime_table):
    built = {
        t: CrossfilterSession(ontime_table, VIEW_DIMENSIONS, t)
        for t in ("lazy", "bt", "bt+ft", "cube")
    }
    db = Database()
    db.create_table("ontime", ontime_table)
    db.create_table(
        "carriers",
        Table({
            "carrier_id": np.arange(NUM_CARRIERS, dtype=np.int64),
            "region": (np.arange(NUM_CARRIERS, dtype=np.int64) % 5),
        }),
    )
    built["sql-prepared"] = CrossfilterSession.from_database(
        db, "ontime", VIEW_DIMENSIONS, "bt", late_materialize=True,
        prepared=True,
    )
    built["sql-pushed"] = CrossfilterSession.from_database(
        db, "ontime", VIEW_DIMENSIONS, "bt", late_materialize=True,
        prepared=False,
    )
    built["sql-materialized"] = CrossfilterSession.from_database(
        db, "ontime", VIEW_DIMENSIONS, "bt", late_materialize=False,
        prepared=False,
    )
    built["sql-pushed-join"] = CrossfilterSession.from_database(
        db, "ontime", JOIN_DIMENSIONS, "bt", late_materialize=True,
        prepared=True, joins=CARRIER_JOIN,
    )
    built["sql-materialized-join"] = CrossfilterSession.from_database(
        db, "ontime", JOIN_DIMENSIONS, "bt", late_materialize=False,
        prepared=True, joins=CARRIER_JOIN,
    )
    return built


@pytest.mark.parametrize("technique", TECHNIQUES)
@pytest.mark.parametrize("dimension", list(JOIN_DIMENSIONS))
def test_fig14_single_interaction(benchmark, sessions, technique, dimension):
    session = sessions[technique]
    if dimension not in session.views:
        pytest.skip("joined dimension exists on the -join axes only")
    bars = session.views[dimension].num_bars

    def run():
        session.brush(dimension, 0)          # heaviest bar (zipf rank 1)
        session.brush(dimension, bars - 1)   # lightest bar

    benchmark.pedantic(run, **ROUNDS)
