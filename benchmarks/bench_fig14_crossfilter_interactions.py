"""Figure 14: per-interaction crossfilter latency per view.

Paper shape: BT+FT under the 150ms threshold for all but a handful of
very-high-lineage bars; spatiotemporal views respond <10ms.

Beyond the paper's four hand-rolled techniques, three declarative axes
run the BT interaction as lineage-consuming SQL over registered views
(``CrossfilterSession.from_database``):

* ``sql-prepared`` — the prepared/session path: per-view statements are
  parsed/bound/rewritten once, ``:bars`` binds into the cached plan, and
  the session's :class:`~repro.lineage.cache.LineageResolutionCache`
  resolves each brush's rid set once across all views;
* ``sql-pushed`` — one-shot statements per interaction, with the
  late-materializing rewrite executing each re-aggregation in the rid
  domain (:mod:`repro.plan.rewrite`);
* ``sql-materialized`` — the same one-shot statements with the rewrite
  disabled, i.e. the PR-1 materialize-then-scan baseline.

Two further axes add a *star-schema* view (``carrier_region``: the
carrier's region, an attribute of a joined ``carriers`` lookup table).
Every brush then updates that view with a join-shaped lineage-consuming
statement — ``GROUP BY`` over ``Lb(view, 'ontime', :bars) JOIN
carriers`` — which the rewrite pushes *through the join*:

* ``sql-pushed-join`` — prepared sessions with the joined view on the
  late-materializing path (narrow key probe, payload gathered at
  matching rows only);
* ``sql-materialized-join`` — identical prepared sessions with only the
  rewrite disabled, so the axis pair isolates the join push itself:
  every join-shaped interaction materializes the full-width traced
  subset before joining.

A final axis adds a *snowflake* view (``region_name``: an attribute two
lookup hops from the fact table, ``ontime → carriers → regions``).  Its
per-brush re-aggregation is a multi-join chain — ``GROUP BY`` over
``Lb(view, 'ontime', :bars) JOIN carriers JOIN regions`` — which the
rewrite flattens into **one** pushed rid-domain core with stats-chosen
build sides per hop:

* ``sql-pushed-chain`` — prepared snowflake sessions on the
  late-materializing chain path (before the chain rewrite, the outer
  join fell back to materializing the inner join's full output).

Comparing those against ``bt`` shows how close crossfilter-over-SQL gets
to the hand-rolled kernels: pushing materialization away closes most of
the gap, and preparing the statements closes most of the rest on
repeated-brush traffic.
"""

import numpy as np
import pytest

from conftest import ROUNDS

from repro.api import Database
from repro.apps.crossfilter import CrossfilterSession, DimensionJoin
from repro.datagen import VIEW_DIMENSIONS
from repro.datagen.ontime import NUM_CARRIERS
from repro.storage import Table

TECHNIQUES = (
    "lazy", "bt", "bt+ft", "cube",
    "sql-prepared", "sql-pushed", "sql-materialized",
    "sql-pushed-join", "sql-materialized-join", "sql-pushed-chain",
)

#: The star-schema axes' dimensions: the four fact views plus a view
#: binned on the joined carriers.region attribute.
JOIN_DIMENSIONS = VIEW_DIMENSIONS + ("carrier_region",)
CARRIER_JOIN = {
    "carrier_region": DimensionJoin(
        "carriers", "carrier", "carrier_id", "region"
    )
}

#: The snowflake axis' dimensions: the binned attribute lives two lookup
#: hops out (ontime.carrier -> carriers.region -> regions.region_name).
NUM_REGIONS = 5
CHAIN_DIMENSIONS = VIEW_DIMENSIONS + ("region_name",)
SNOWFLAKE_JOIN = {
    "region_name": DimensionJoin(
        "regions", "region", "region", "region_name",
        parent=DimensionJoin("carriers", "carrier", "carrier_id", "region"),
    )
}

#: Every dimension any axis exposes (tests skip absent ones per session).
ALL_DIMENSIONS = VIEW_DIMENSIONS + ("carrier_region", "region_name")


@pytest.fixture(scope="module")
def sessions(ontime_table):
    built = {
        t: CrossfilterSession(ontime_table, VIEW_DIMENSIONS, t)
        for t in ("lazy", "bt", "bt+ft", "cube")
    }
    db = Database()
    db.create_table("ontime", ontime_table)
    db.create_table(
        "carriers",
        Table({
            "carrier_id": np.arange(NUM_CARRIERS, dtype=np.int64),
            "region": (np.arange(NUM_CARRIERS, dtype=np.int64) % 5),
        }),
    )
    built["sql-prepared"] = CrossfilterSession.from_database(
        db, "ontime", VIEW_DIMENSIONS, "bt", late_materialize=True,
        prepared=True,
    )
    built["sql-pushed"] = CrossfilterSession.from_database(
        db, "ontime", VIEW_DIMENSIONS, "bt", late_materialize=True,
        prepared=False,
    )
    built["sql-materialized"] = CrossfilterSession.from_database(
        db, "ontime", VIEW_DIMENSIONS, "bt", late_materialize=False,
        prepared=False,
    )
    built["sql-pushed-join"] = CrossfilterSession.from_database(
        db, "ontime", JOIN_DIMENSIONS, "bt", late_materialize=True,
        prepared=True, joins=CARRIER_JOIN,
    )
    built["sql-materialized-join"] = CrossfilterSession.from_database(
        db, "ontime", JOIN_DIMENSIONS, "bt", late_materialize=False,
        prepared=True, joins=CARRIER_JOIN,
    )
    region_names = np.empty(NUM_REGIONS, dtype=object)
    region_names[:] = [f"region_{i}" for i in range(NUM_REGIONS)]
    db.create_table(
        "regions",
        Table({
            "region": np.arange(NUM_REGIONS, dtype=np.int64),
            "region_name": region_names,
        }),
    )
    built["sql-pushed-chain"] = CrossfilterSession.from_database(
        db, "ontime", CHAIN_DIMENSIONS, "bt", late_materialize=True,
        prepared=True, joins=SNOWFLAKE_JOIN,
    )
    return built


@pytest.mark.parametrize("technique", TECHNIQUES)
@pytest.mark.parametrize("dimension", list(ALL_DIMENSIONS))
def test_fig14_single_interaction(benchmark, sessions, technique, dimension):
    session = sessions[technique]
    if dimension not in session.views:
        pytest.skip("joined dimension exists on the -join/-chain axes only")
    bars = session.views[dimension].num_bars

    def run():
        session.brush(dimension, 0)          # heaviest bar (zipf rank 1)
        session.brush(dimension, bars - 1)   # lightest bar

    benchmark.pedantic(run, **ROUNDS)
