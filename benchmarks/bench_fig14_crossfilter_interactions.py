"""Figure 14: per-interaction crossfilter latency per view.

Paper shape: BT+FT under the 150ms threshold for all but a handful of
very-high-lineage bars; spatiotemporal views respond <10ms.
"""

import pytest

from conftest import ROUNDS

from repro.apps.crossfilter import CrossfilterSession
from repro.datagen import VIEW_DIMENSIONS


@pytest.fixture(scope="module")
def sessions(ontime_table):
    return {
        t: CrossfilterSession(ontime_table, VIEW_DIMENSIONS, t)
        for t in ("lazy", "bt", "bt+ft", "cube")
    }


@pytest.mark.parametrize("technique", ["lazy", "bt", "bt+ft", "cube"])
@pytest.mark.parametrize("dimension", list(VIEW_DIMENSIONS))
def test_fig14_single_interaction(benchmark, sessions, technique, dimension):
    session = sessions[technique]
    bars = session.views[dimension].num_bars

    def run():
        session.brush(dimension, 0)          # heaviest bar (zipf rank 1)
        session.brush(dimension, bars - 1)   # lightest bar

    benchmark.pedantic(run, **ROUNDS)
