"""Figure 9: backward lineage query latency vs skew.

Paper shape: Smoke-L (index probe) beats Lazy/Logic-Rid/Logic-Tup scans by
orders of magnitude at low selectivity; skewed groups approach scan cost.
"""

import numpy as np
import pytest

from repro.bench.experiments.fig09_query import TECHNIQUE_FNS, make_context
from repro.bench.harness import scaled

THETAS = [0.0, 1.6]


@pytest.fixture(scope="module", params=THETAS, ids=lambda t: f"theta={t}")
def ctx(request):
    return make_context(request.param, n=scaled(100_000))


@pytest.mark.parametrize("technique", sorted(TECHNIQUE_FNS))
def test_fig09_backward_query(benchmark, ctx, technique):
    fn = TECHNIQUE_FNS[technique]
    rng = np.random.default_rng(0)
    outs = rng.integers(0, ctx["num_groups"], 20)

    def run():
        for o in outs[:5]:
            fn(ctx, int(o))

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
