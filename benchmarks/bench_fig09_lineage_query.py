"""Figure 9: backward lineage query latency vs skew.

Paper shape: Smoke-L (index probe) beats Lazy/Logic-Rid/Logic-Tup scans by
orders of magnitude at low selectivity; skewed groups approach scan cost.

The ``lb_batched``/``lb_per_call`` pair below answers the same 20
distinct-Lb probes through one ``backward_batch`` call vs 20 per-call
``QueryLineage.backward`` lookups — the batched path resolves the index
once and dedups through a reusable CSR-level flag array, and must report
no slower than the per-call path.  (It is kept out of TECHNIQUE_FNS so
run_report keeps reproducing the paper's Figure 9 rows verbatim.)
"""

import numpy as np
import pytest

from repro.bench.experiments.fig09_query import (
    TECHNIQUE_FNS,
    make_context,
    query_lb_batched,
    query_lb_per_call,
)
from repro.bench.harness import scaled

THETAS = [0.0, 1.6]


@pytest.fixture(scope="module", params=THETAS, ids=lambda t: f"theta={t}")
def ctx(request):
    return make_context(request.param, n=scaled(100_000))


@pytest.mark.parametrize("technique", sorted(TECHNIQUE_FNS))
def test_fig09_backward_query(benchmark, ctx, technique):
    fn = TECHNIQUE_FNS[technique]
    rng = np.random.default_rng(0)
    outs = rng.integers(0, ctx["num_groups"], 20)

    def run():
        for o in outs[:5]:
            fn(ctx, int(o))

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)


@pytest.mark.parametrize("shape", ["lb_per_call", "lb_batched"])
def test_fig09_backward_query_batched(benchmark, ctx, shape):
    """The same 20 distinct-Lb probes: 20 per-call lookups vs one
    backward_batch call.  The batched path must be no slower."""
    rng = np.random.default_rng(0)
    outs = [int(o) for o in rng.integers(0, ctx["num_groups"], 20)]

    if shape == "lb_per_call":
        def run():
            for o in outs:
                query_lb_per_call(ctx, o)
    else:
        def run():
            query_lb_batched(ctx, outs)

    benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=1)
