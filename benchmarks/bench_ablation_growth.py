"""Ablation: rid-array growth policy vs exact pre-allocation.

DESIGN.md calls out two capture-side design choices the paper analyzes:

1. the 10-element / 1.5x growable-array policy (Inject's write path) vs
   exact allocation from known cardinalities (Defer / Smoke-I-TC) — the
   paper attributes most capture overhead to resizing;
2. the P4 reuse path (the aggregation's own sorted layout *is* the
   backward index) vs rebuilding the index with appends.

This module isolates both choices on the index structures alone, without
query execution noise, and additionally sweeps the growth factor to show
why 1.5x (and not, say, 1.05x) is the right trade-off.
"""

import numpy as np
import pytest

from conftest import ROUNDS

from repro.bench.harness import scaled
from repro.exec.vector.groupby import inject_backward_index
from repro.lineage.indexes import GrowableRidIndex, RidIndex
from repro.storage.growable import GrowableRidVector


@pytest.fixture(scope="module")
def group_ids():
    rng = np.random.default_rng(3)
    from repro.substrate.zipf import sample_zipf

    return sample_zipf(scaled(200_000), 1_000, 1.0, rng), 1_000


def test_ablation_exact_allocation(benchmark, group_ids):
    """Defer-style: counts known, one counting sort, zero resizes."""
    ids, groups = group_ids
    benchmark.pedantic(
        lambda: RidIndex.from_group_ids(ids, groups), **ROUNDS
    )


def test_ablation_growable_appends(benchmark, group_ids):
    """Inject-style: chunked appends through the 10/1.5x growth policy."""
    ids, groups = group_ids
    benchmark.pedantic(
        lambda: inject_backward_index(ids, groups, chunk_size=1 << 16), **ROUNDS
    )


def test_ablation_growable_with_capacities(benchmark, group_ids):
    """Inject + exact capacities (Smoke-I-TC): appends, but no resizes."""
    ids, groups = group_ids
    counts = np.bincount(ids, minlength=groups).astype(np.int64)
    benchmark.pedantic(
        lambda: inject_backward_index(
            ids, groups, chunk_size=1 << 16, capacities=counts
        ),
        **ROUNDS,
    )


@pytest.mark.parametrize("rows", [1_000, 100_000])
def test_ablation_single_vector_growth(benchmark, rows):
    """Pure growth-policy cost for one bucket (no chunking, no sorting)."""

    def run():
        vec = GrowableRidVector()
        vec.extend(np.arange(rows, dtype=np.int64))
        return vec.resize_count

    benchmark.pedantic(run, **ROUNDS)


def test_growth_policy_resize_counts():
    """Documents the resize math: 1.5x keeps resizes logarithmic."""
    vec = GrowableRidVector()
    for i in range(200_000):
        vec.append(i)
    assert vec.resize_count < 30
    # Exact pre-allocation removes them entirely (the TC effect).
    sized = GrowableRidVector(capacity=200_000)
    sized.extend(np.arange(200_000))
    assert sized.resize_count == 0
