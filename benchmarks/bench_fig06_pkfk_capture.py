"""Figure 6: pk-fk join capture latency.

Paper shape: Logic-Idx (1.4x overhead) > Smoke-I (0.41x) > Smoke-I-TC
(0.23x); the TC gap appears in the tuple-append-emulation pair here.
"""

import pytest

from conftest import ROUNDS

from repro.bench.experiments.fig06_pkfk import (
    TECHNIQUES,
    join_query,
    run_technique,
)


@pytest.mark.parametrize("technique", TECHNIQUES)
def test_fig06_capture(benchmark, zipf_db, technique):
    benchmark.pedantic(
        lambda: run_technique(zipf_db, technique, 1_000), **ROUNDS
    )


@pytest.mark.parametrize("technique", ["baseline", "logic-idx", "smoke-i"])
def test_fig06_capture_many_groups(benchmark, zipf_db_many_groups, technique):
    benchmark.pedantic(
        lambda: run_technique(zipf_db_many_groups, technique, 10_000), **ROUNDS
    )
