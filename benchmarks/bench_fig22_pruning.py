"""Figure 22 (G.2): input-relation instrumentation pruning.

Paper shape: capturing only one relation cuts overhead; the left-most
(high-fanout) tables dominate; lineitem is cheapest (pk-fk rid arrays).
"""

import pytest

from conftest import ROUNDS

from repro.bench.experiments.fig22_pruning import CONFIGS, run_config

CASES = [("Q3", None), ("Q3", CONFIGS["Q3"])] + [
    ("Q3", (r,)) for r in CONFIGS["Q3"]
] + [("Q10", None), ("Q10", CONFIGS["Q10"])] + [
    ("Q10", (r,)) for r in CONFIGS["Q10"]
]


@pytest.mark.parametrize(
    "query,relations",
    CASES,
    ids=[f"{q}-{'none' if r is None else ('all' if len(r) > 1 else r[0])}" for q, r in CASES],
)
def test_fig22_pruned_capture(benchmark, tpch_bench_db, query, relations):
    benchmark.pedantic(
        lambda: run_config(tpch_bench_db, query, relations), **ROUNDS
    )
