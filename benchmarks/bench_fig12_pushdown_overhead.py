"""Figure 12: capture overhead without vs with aggregation push-down.

Paper shape: ~2.9% average instrumentation overhead without push-down
rising to ~9.15% with the pushed cube - cheap, but not free.
"""

import pytest

from conftest import ROUNDS

from repro.bench.experiments.fig12_overhead import make_context, run_bar

MODES = ["baseline", "no-pushdown", "pushdown"]


@pytest.fixture(scope="module")
def ctx():
    return make_context()


@pytest.mark.parametrize("mode", MODES)
def test_fig12_capture_overhead(benchmark, ctx, mode):
    benchmark.pedantic(lambda: run_bar(ctx, 0, mode), rounds=2, iterations=1)
