"""Figure 10: data skipping for lineage consuming queries.

Paper shape: skipping stays <=150ms across selectivities; no-skipping is
bottlenecked by secondary scans of large buckets; lazy pays a full scan.
"""

import pytest

from conftest import ROUNDS

from repro.bench.experiments.fig10_skipping import (
    STRATEGIES,
    make_context,
    parameter_combinations,
)


@pytest.fixture(scope="module")
def ctx():
    return make_context()


@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_fig10_consuming_query(benchmark, ctx, strategy):
    fn = STRATEGIES[strategy]
    combos = parameter_combinations(2)

    def run():
        for bar in range(len(ctx["opt"].table)):
            for p1, p2 in combos:
                fn(ctx, bar, p1, p2)

    benchmark.pedantic(run, **ROUNDS)
