"""Late-materializing LineageScan: pushed vs materialized vs hand-rolled.

Crossfilter-style lineage-consuming statements (filter / narrow
projection / re-aggregation over ``Lb(view, 'ontime', :bars)``, plus the
star-schema join re-aggregation ``Lb(...) JOIN carriers``, the snowflake
**chain** re-aggregation ``Lb(...) JOIN carriers JOIN regions JOIN
continents`` — three joins flattened into one pushed rid-domain core —
and a DISTINCT projection) timed on three paths:

* **pushed** — the late-materialization rewrite (:mod:`repro.plan.rewrite`):
  operators run in the rid domain, gathering only the touched columns;
* **materialized** — the PR-1 path (``late_materialize=False``): the
  traced subset is copied full-width, then scanned;
* **hand-rolled** — the paper-style interaction kernel the rewrite is
  chasing: a direct backward-index probe plus numpy gather/bincount.

Per-benchmark median milliseconds are written to ``BENCH_latemat.json``
(override the path with ``BENCH_LATEMAT_PATH``) so CI and the roadmap can
track the pushed-path speedup as a machine-readable artifact.  A smoke
run at tiny ``REPRO_SCALE`` exercises all three paths and the equivalence
assertions; the ≥2x speedup gate only applies at full scale.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.api import Database, ExecOptions
from repro.bench.harness import scale, time_median
from repro.exec.timings import (
    LATE_MAT_CHAIN_HOPS,
    LATE_MAT_DISTINCTS,
    LATE_MAT_JOINS,
    LATE_MAT_SUBTREES,
)
from repro.lineage.capture import CaptureMode

#: The PR-1 materializing baseline (no lineage-scan push-down).
NO_PUSH = ExecOptions(late_materialize=False)

#: bench name -> {"pushed": ms, "materialized": ms, "hand_rolled": ms}
RESULTS = {}

REPEATS = dict(repeats=5, warmup=1)

NUM_CARRIERS = 29


#: Non-dimension columns carried by the benchmark relation.  The real BTS
#: ontime records hold ~110 fields; 12 payload columns (18 total) keeps
#: the dataset laptop-sized while making materialization width realistic
#: — the pushed path's whole point is not gathering these.
PAYLOAD_COLS = 12


#: Lookup-table regions for the star-schema join axis.
NUM_REGIONS = 5

#: Second-level lookups for the snowflake chain axis.
NUM_CONTINENTS = 3
NUM_HEMISPHERES = 2


@pytest.fixture(scope="module")
def latemat_db():
    from repro.bench.harness import scaled
    from repro.datagen import make_ontime_table
    from repro.storage import Table

    db = Database()
    db.create_table(
        "ontime", make_ontime_table(scaled(200_000), payload_cols=PAYLOAD_COLS)
    )
    # Star-schema lookup: carrier -> region (the joined crossfilter view).
    db.create_table(
        "carriers",
        Table({
            "carrier_id": np.arange(NUM_CARRIERS, dtype=np.int64),
            "region": (np.arange(NUM_CARRIERS, dtype=np.int64) % NUM_REGIONS),
        }),
    )
    # Snowflake hops: region -> continent -> hemisphere (the 3-join chain
    # axis; the binned attribute sits two lookups past the carrier dim,
    # like the other axes' binned-integer view attributes).
    db.create_table(
        "regions",
        Table({
            "region": np.arange(NUM_REGIONS, dtype=np.int64),
            "continent": (np.arange(NUM_REGIONS, dtype=np.int64) % NUM_CONTINENTS),
        }),
    )
    db.create_table(
        "continents",
        Table({
            "continent": np.arange(NUM_CONTINENTS, dtype=np.int64),
            "hemisphere": (
                np.arange(NUM_CONTINENTS, dtype=np.int64) % NUM_HEMISPHERES
            ),
        }),
    )
    db.sql(
        "SELECT latlon_bin, COUNT(*) AS cnt FROM ontime GROUP BY latlon_bin",
        options=ExecOptions(capture=CaptureMode.INJECT, name="view", pin=True),
    )
    return db


@pytest.fixture(scope="module", autouse=True)
def emit_json():
    yield
    medians_ms = {
        f"{name}_{variant}": ms
        for name, variants in sorted(RESULTS.items())
        for variant, ms in sorted(variants.items())
    }
    speedups = {
        name: round(v["materialized"] / v["pushed"], 2)
        for name, v in sorted(RESULTS.items())
        if v.get("pushed")
    }
    merge_bench_json(
        medians_ms, {"speedup_vs_materialized": speedups}
    )


def merge_bench_json(medians_ms, extra_sections=None):
    """Merge one bench module's medians into ``BENCH_latemat.json``.

    The artifact is shared by several modules (this one and
    ``bench_concurrent_brush.py``), each owning a disjoint key set;
    merging instead of overwriting lets either run standalone without
    erasing the other's axes.  A stale ``scale`` mismatch invalidates
    the whole file — mixed-scale medians are not comparable.

    The write is atomic (temp file in the same directory, then
    ``os.replace``): the old read-modify-``write_text`` could be torn by
    a concurrent merger — CI legs running bench modules in separate
    processes would race, and a reader (or the other merger's
    read-back) could observe a half-written artifact.  ``os.replace``
    makes each merge all-or-nothing; the last writer wins whole-file,
    never a byte-level interleaving."""
    path = Path(os.environ.get("BENCH_LATEMAT_PATH", "BENCH_latemat.json"))
    payload = {"scale": scale(), "medians_ms": {}}
    if path.exists():
        try:
            existing = json.loads(path.read_text())
        except (ValueError, OSError):
            existing = {}
        if existing.get("scale") == scale():
            payload = existing
            payload.setdefault("medians_ms", {})
    payload["medians_ms"].update(medians_ms)
    payload["medians_ms"] = dict(sorted(payload["medians_ms"].items()))
    for section, values in (extra_sections or {}).items():
        payload[section] = values
    tmp = path.with_name(f".{path.name}.tmp{os.getpid()}")
    tmp.write_text(json.dumps(payload, indent=2) + "\n")
    os.replace(tmp, path)


def _bars(db):
    # The heaviest bar (zipf rank 1) — the paper's worst-case brush.
    heavy = int(np.argmax(db.result("view").table.column("cnt")))
    return np.array([heavy], dtype=np.int64)


def _record(name, variant, fn):
    seconds = time_median(fn, **REPEATS)
    RESULTS.setdefault(name, {})[variant] = round(seconds * 1000, 4)
    return seconds


def _run_both_paths(db, name, statement, params):
    plan = db.parse(statement)
    pushed = db.execute(plan, params=params)
    materialized = db.execute(plan, params=params, options=NO_PUSH)
    assert pushed.timings.get(LATE_MAT_SUBTREES) == 1.0
    assert pushed.table.to_rows() == materialized.table.to_rows()
    _record(name, "pushed", lambda: db.execute(plan, params=params))
    _record(
        name,
        "materialized",
        lambda: db.execute(plan, params=params, options=NO_PUSH),
    )
    return pushed


def test_reaggregate(latemat_db):
    """The BT re-aggregation: GROUP BY over the brushed bar's lineage."""
    db = latemat_db
    bars = _bars(db)
    res = _run_both_paths(
        db,
        "reaggregate",
        "SELECT carrier, COUNT(*) AS cnt "
        "FROM Lb(view, 'ontime', :bars) GROUP BY carrier",
        {"bars": bars},
    )

    lineage = db.result("view").lineage
    table = db.table("ontime")

    def hand_rolled():
        rids = lineage.backward(bars, "ontime")
        return np.bincount(table.column("carrier")[rids], minlength=NUM_CARRIERS)

    counts = hand_rolled()
    assert int(counts.sum()) == int(res.table.column("cnt").sum())
    _record("reaggregate", "hand_rolled", hand_rolled)


def test_filter_aggregate(latemat_db):
    """Brush + predicate: the Lb-filter-aggregate acceptance shape."""
    db = latemat_db
    bars = _bars(db)
    res = _run_both_paths(
        db,
        "filter_aggregate",
        "SELECT carrier, COUNT(*) AS cnt FROM Lb(view, 'ontime', :bars) "
        "WHERE delay_bin >= 4 GROUP BY carrier",
        {"bars": bars},
    )

    lineage = db.result("view").lineage
    table = db.table("ontime")

    def hand_rolled():
        rids = lineage.backward(bars, "ontime")
        keep = table.column("delay_bin")[rids] >= 4
        return np.bincount(
            table.column("carrier")[rids[keep]], minlength=NUM_CARRIERS
        )

    counts = hand_rolled()
    assert int(counts.sum()) == int(res.table.column("cnt").sum())
    _record("filter_aggregate", "hand_rolled", hand_rolled)


def test_narrow_projection(latemat_db):
    """The linked-brush shape: one projected column behind the brush."""
    db = latemat_db
    bars = _bars(db)
    _run_both_paths(
        db,
        "narrow_projection",
        "SELECT date_bin FROM Lb(view, 'ontime', :bars) WHERE carrier = 1",
        {"bars": bars},
    )

    lineage = db.result("view").lineage
    table = db.table("ontime")

    def hand_rolled():
        rids = lineage.backward(bars, "ontime")
        keep = table.column("carrier")[rids] == 1
        return table.column("date_bin")[rids[keep]]

    _record("narrow_projection", "hand_rolled", hand_rolled)


def test_join_reaggregate(latemat_db):
    """The star-schema BT re-aggregation: GROUP BY over the brushed
    bar's lineage joined to the carrier lookup table — the join-pushed
    acceptance shape (only the fact join key is gathered to probe, only
    the joined attribute at matching rows)."""
    db = latemat_db
    bars = _bars(db)
    res = _run_both_paths(
        db,
        "join_reaggregate",
        "SELECT region, COUNT(*) AS cnt FROM Lb(view, 'ontime', :bars) "
        "JOIN carriers ON ontime.carrier = carriers.carrier_id "
        "GROUP BY region",
        {"bars": bars},
    )
    assert res.timings.get(LATE_MAT_JOINS) == 1.0

    lineage = db.result("view").lineage
    table = db.table("ontime")
    region_of_carrier = db.table("carriers").column("region")

    def hand_rolled():
        rids = lineage.backward(bars, "ontime")
        return np.bincount(
            region_of_carrier[table.column("carrier")[rids]],
            minlength=NUM_REGIONS,
        )

    counts = hand_rolled()
    assert int(counts.sum()) == int(res.table.column("cnt").sum())
    _record("join_reaggregate", "hand_rolled", hand_rolled)


def test_chain_reaggregate(latemat_db):
    """The snowflake-chain BT re-aggregation: GROUP BY over the brushed
    bar's lineage joined through **three** lookup hops (carrier → region
    → continent) — the whole chain flattens into one pushed rid-domain
    core (``late_mat_chain_hops == 2``: two joins beyond PR 4's single
    pushed join), probing narrow key columns per hop with stats-chosen
    build sides and gathering only ``hemisphere`` at chain-surviving
    rows."""
    db = latemat_db
    bars = _bars(db)
    res = _run_both_paths(
        db,
        "chain_reaggregate",
        "SELECT hemisphere, COUNT(*) AS cnt FROM Lb(view, 'ontime', :bars) "
        "JOIN carriers ON ontime.carrier = carriers.carrier_id "
        "JOIN regions ON carriers.region = regions.region "
        "JOIN continents ON regions.continent = continents.continent "
        "GROUP BY hemisphere",
        {"bars": bars},
    )
    assert res.timings.get(LATE_MAT_JOINS) == 1.0
    assert res.timings.get(LATE_MAT_CHAIN_HOPS) == 2.0

    lineage = db.result("view").lineage
    table = db.table("ontime")
    region_of_carrier = db.table("carriers").column("region")
    continent_of_region = db.table("regions").column("continent")
    hemisphere_of_continent = db.table("continents").column("hemisphere")

    def hand_rolled():
        rids = lineage.backward(bars, "ontime")
        return np.bincount(
            hemisphere_of_continent[
                continent_of_region[
                    region_of_carrier[table.column("carrier")[rids]]
                ]
            ],
            minlength=NUM_HEMISPHERES,
        )

    counts = hand_rolled()
    assert int(counts.sum()) == int(res.table.column("cnt").sum())
    _record("chain_reaggregate", "hand_rolled", hand_rolled)


def test_distinct_projection(latemat_db):
    """DISTINCT in the rid domain: dedup the brushed bar's carriers
    without materializing the full-width traced subset first."""
    db = latemat_db
    bars = _bars(db)
    res = _run_both_paths(
        db,
        "distinct_projection",
        "SELECT DISTINCT carrier FROM Lb(view, 'ontime', :bars)",
        {"bars": bars},
    )
    assert res.timings.get(LATE_MAT_DISTINCTS) == 1.0

    lineage = db.result("view").lineage
    table = db.table("ontime")

    def hand_rolled():
        rids = lineage.backward(bars, "ontime")
        return np.unique(table.column("carrier")[rids])

    assert hand_rolled().shape[0] == len(res.table)
    _record("distinct_projection", "hand_rolled", hand_rolled)


#: Statements timed on the morsel-parallel axis: the group-by
#: re-aggregation (gather + bincount heavy) and the snowflake chain
#: (probe heavy) — the two hot kernels the morsel layer parallelizes.
PARALLEL_AXES = {
    "parallel_reaggregate": (
        "SELECT carrier, COUNT(*) AS cnt "
        "FROM Lb(view, 'ontime', :bars) GROUP BY carrier"
    ),
    "parallel_chain_reaggregate": (
        "SELECT hemisphere, COUNT(*) AS cnt FROM Lb(view, 'ontime', :bars) "
        "JOIN carriers ON ontime.carrier = carriers.carrier_id "
        "JOIN regions ON carriers.region = regions.region "
        "JOIN continents ON regions.continent = continents.continent "
        "GROUP BY hemisphere"
    ),
}

PARALLEL_WORKERS = 4


def test_parallel_speedup(latemat_db):
    """Morsel-driven parallel kernels vs serial on the two hottest pushed
    shapes.  Equivalence is asserted bit-identically first (the
    deterministic-merge contract), then both arms are timed.  The
    serial arm pins ``parallel=1`` explicitly so a CI-set
    ``REPRO_PARALLEL`` cannot leak into the baseline."""
    db = latemat_db
    bars = _bars(db)
    serial_opts = ExecOptions(parallel=1)
    par_opts = ExecOptions(parallel=PARALLEL_WORKERS)
    for name, statement in PARALLEL_AXES.items():
        plan = db.parse(statement)
        serial = db.execute(plan, params={"bars": bars}, options=serial_opts)
        par = db.execute(plan, params={"bars": bars}, options=par_opts)
        assert serial.table.to_rows() == par.table.to_rows()
        serial_s = _record(
            name,
            "serial",
            lambda: db.execute(plan, params={"bars": bars}, options=serial_opts),
        )
        par_s = _record(
            name,
            f"parallel{PARALLEL_WORKERS}",
            lambda: db.execute(plan, params={"bars": bars}, options=par_opts),
        )
        RESULTS[name]["speedup_x"] = round(serial_s / par_s, 2) if par_s else 0.0


def test_parallel_speedup_gate(latemat_db):
    """Acceptance: ≥1.5x over serial at 4 morsel workers on the parallel
    axes.  Only meaningful with real cores — skipped on boxes with
    fewer than 4 CPUs (threads would time-slice one core and the gate
    would measure scheduler noise, not the morsel layer) and at smoke
    scales (morsels don't amortize dispatch on tiny inputs)."""
    if scale() < 1.0:
        pytest.skip("parallel speedup gate applies at REPRO_SCALE >= 1 only")
    if (os.cpu_count() or 1) < PARALLEL_WORKERS:
        pytest.skip(
            f"parallel speedup gate needs >= {PARALLEL_WORKERS} CPUs, "
            f"got {os.cpu_count()}"
        )
    for name in PARALLEL_AXES:
        variants = RESULTS[name]
        assert variants["speedup_x"] >= 1.5, (name, variants)


def test_wal_overhead(latemat_db, tmp_path_factory):
    """Durability tax: the full capture-query-plus-registration path on a
    durable database (WAL append + fsync before acknowledgment) vs the
    same path on a plain in-memory one.  Both run end-to-end — execute,
    capture, register — because that is the unit a crossfilter app pays
    per view registration."""
    statement = (
        "SELECT latlon_bin, COUNT(*) AS cnt FROM ontime GROUP BY latlon_bin"
    )
    opts = ExecOptions(capture=CaptureMode.INJECT, name="wal_probe")
    ontime = latemat_db.table("ontime")

    mem_db = Database()
    mem_db.create_table("ontime", ontime)
    dur_db = Database.open(tmp_path_factory.mktemp("walbench") / "state")
    dur_db.create_table("ontime", ontime)

    # A crossfilter interaction registers a burst of views; commit each
    # burst under one group fsync (the sanctioned amortization lever).
    # Interleave the two variants and take the median of the paired
    # ratios so page-cache warmup and background I/O drift hit both
    # sides alike instead of biasing the comparison.
    from repro.bench.harness import time_once

    burst = 4

    def mem_burst():
        for _ in range(burst):
            mem_db.sql(statement, options=opts)

    def dur_burst():
        with dur_db.durability.group_commit():
            for _ in range(burst):
                dur_db.sql(statement, options=opts)

    mem_burst()
    dur_burst()
    mem_times, dur_times, ratios = [], [], []
    for _ in range(9):
        mem_seconds = time_once(mem_burst)
        dur_seconds = time_once(dur_burst)
        mem_times.append(mem_seconds)
        dur_times.append(dur_seconds)
        ratios.append(dur_seconds / mem_seconds)
    mem = sorted(mem_times)[len(mem_times) // 2] / burst
    dur = sorted(dur_times)[len(dur_times) // 2] / burst
    dur_db.close()
    assert dur >= 0 and mem >= 0
    RESULTS["wal_overhead"] = {
        "in_memory": round(mem * 1000, 4),
        "durable": round(dur * 1000, 4),
        "overhead_x": round(sorted(ratios)[len(ratios) // 2], 2),
    }


def test_wal_overhead_gate(latemat_db):
    """Acceptance: fsync-on-commit registration stays within 1.3x of
    in-memory registration at the default bench scale (group commit is
    the sanctioned lever if a workload ever breaches this)."""
    if scale() < 1.0:
        pytest.skip("wal overhead gate applies at REPRO_SCALE >= 1 only")
    variants = RESULTS["wal_overhead"]
    assert variants["overhead_x"] <= 1.3, variants


def test_pushed_speedup_gate(latemat_db):
    """Acceptance: pushed ≥ 2x faster than materialized on the
    crossfilter-style filter-aggregate shapes — including the pushed
    *join* re-aggregation and the rid-domain DISTINCT — at the default
    bench scale (timing gates are meaningless at smoke scales)."""
    if scale() < 1.0:
        pytest.skip("speedup gate applies at REPRO_SCALE >= 1 only")
    for name in (
        "reaggregate",
        "filter_aggregate",
        "join_reaggregate",
        "chain_reaggregate",
        "distinct_projection",
    ):
        variants = RESULTS[name]
        assert variants["materialized"] >= 2.0 * variants["pushed"], (
            name,
            variants,
        )
