"""Concurrent brushing through the serving layer vs serialized R/W.

The paper's serving story (Section 6.5: many users brushing while
refreshes land) needs two numbers: what one thread pays when every
brush is serialized behind a refresh, and what N snapshot readers
sustain when the writer refreshes on its own cadence.  Four throughput
axes, all brushes/second on the same statement:

* ``concurrent_brush_serialized_rw_per_s`` — one thread alternating
  {refresh the base table + re-register the view; brush}: every brush
  pays a fresh epoch, the no-serving-layer baseline.
* ``concurrent_brush_readers_{1,4,8}_per_s`` — a
  :class:`~repro.serve.DatabaseServer` with a background writer doing
  the same refresh on a ~10 ms cadence while N reader threads brush a
  hot bar pool against pinned snapshots.  Within one epoch window the
  per-snapshot answer memo collapses repeated questions, which is what
  lets aggregate throughput scale with readers even on one core.

Medians are merged into ``BENCH_latemat.json`` next to the
late-materialization axes (same artifact, disjoint keys).  Gates apply
at ``REPRO_SCALE >= 1`` only.
"""

import threading
import time

import numpy as np
import pytest
from bench_lineage_scan_late_mat import merge_bench_json

from repro.api import Database, ExecOptions
from repro.bench.harness import scale, scaled
from repro.datagen import make_ontime_table
from repro.lineage.capture import CaptureMode
from repro.storage import Table

VIEW = "SELECT latlon_bin, COUNT(*) AS cnt FROM ontime GROUP BY latlon_bin"
BRUSH = (
    "SELECT carrier, COUNT(*) AS cnt "
    "FROM Lb(view, 'ontime', :bars) GROUP BY carrier"
)
VIEW_OPTS = ExecOptions(capture=CaptureMode.INJECT, name="view", pin=True)

PAYLOAD_COLS = 6
HOT_BARS = 8
WRITER_CADENCE_S = 0.010

#: brushes/second per axis, collected across tests and emitted once.
RESULTS = {}


def _measure_seconds() -> float:
    # Long enough at full scale for several writer epochs per axis;
    # smoke runs just need every code path exercised once.
    return max(0.2, 0.8 * min(scale(), 1.0))


@pytest.fixture(scope="module")
def brush_db():
    db = Database()
    db.create_table(
        "ontime",
        make_ontime_table(scaled(200_000), payload_cols=PAYLOAD_COLS),
    )
    db.sql(VIEW, options=VIEW_OPTS)
    return db


@pytest.fixture(scope="module", autouse=True)
def emit_json():
    yield
    medians = {
        f"concurrent_brush_{axis}_per_s": round(value, 1)
        for axis, value in sorted(RESULTS.items())
    }
    if "serialized_rw" in RESULTS and "readers_4" in RESULTS:
        medians["concurrent_brush_speedup_4_vs_serialized"] = round(
            RESULTS["readers_4"] / RESULTS["serialized_rw"], 2
        )
    if "batched_8users" in RESULTS and "unbatched_8users" in RESULTS:
        medians["concurrent_brush_batched_speedup_8users"] = round(
            RESULTS["batched_8users"] / RESULTS["unbatched_8users"], 2
        )
    merge_bench_json(medians)


def _refresh(db):
    """One write operation: bump a payload column in place
    (``preserve_rids`` — rids stay valid) and re-register the view
    (registry epoch bump — every cached brush answer goes stale)."""
    t = db.table("ontime")
    columns = {name: t.column(name) for name in t.schema.names}
    columns["payload0"] = columns["payload0"] + 1
    db.create_table(
        "ontime", Table(columns), replace=True, preserve_rids=True
    )
    db.sql(VIEW, options=VIEW_OPTS)


def _hot_bars(db):
    counts = np.asarray(db.result("view").table.column("cnt"))
    order = np.argsort(counts)[::-1][:HOT_BARS]
    return [np.array([int(bar)], dtype=np.int64) for bar in order]


def test_serialized_rw(brush_db):
    """Baseline: refresh-then-brush on one thread, no serving layer."""
    db = brush_db
    bars = _hot_bars(db)
    plan = db.parse(BRUSH)
    _refresh(db)
    db.execute(plan, params={"bars": bars[0]})  # warmup
    brushes = 0
    deadline = time.perf_counter() + _measure_seconds()
    start = time.perf_counter()
    while time.perf_counter() < deadline:
        _refresh(db)
        res = db.execute(plan, params={"bars": bars[brushes % HOT_BARS]})
        assert res.table.num_rows >= 1
        brushes += 1
    RESULTS["serialized_rw"] = brushes / (time.perf_counter() - start)


@pytest.mark.parametrize("readers", [1, 4, 8])
def test_concurrent_readers(brush_db, readers):
    """N snapshot readers brushing hot bars while the writer refreshes
    on a fixed cadence."""
    db = brush_db
    bars = _hot_bars(db)
    stop = threading.Event()
    errors = []
    counts = [0] * readers

    with db.serve(readers=readers) as server:
        server.sql(BRUSH, params={"bars": bars[0]})  # warmup / prepare

        def writer():
            while not stop.is_set():
                try:
                    server.write(_refresh)
                except Exception as exc:  # noqa: BLE001 - recorded
                    errors.append(exc)
                    return
                stop.wait(WRITER_CADENCE_S)

        def reader(slot):
            i = slot  # stagger starting bars across readers
            try:
                while not stop.is_set():
                    res = server.sql(BRUSH, params={"bars": bars[i % HOT_BARS]})
                    assert res.table.num_rows >= 1
                    counts[slot] += 1
                    i += 1
            except Exception as exc:  # noqa: BLE001 - recorded
                errors.append(exc)

        threads = [threading.Thread(target=writer)]
        threads += [
            threading.Thread(target=reader, args=(slot,))
            for slot in range(readers)
        ]
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        time.sleep(_measure_seconds())
        stop.set()
        for thread in threads:
            thread.join(timeout=60)
        elapsed = time.perf_counter() - start

    assert not errors, errors[:3]
    total = sum(counts)
    assert total > 0, "readers never completed a brush"
    RESULTS[f"readers_{readers}"] = total / elapsed


BATCH_USERS = 8
BARS_PER_USER = 4


def _user_bars(order):
    """Per-user brush selections: 4 overlapping hot bars each (the
    paper's "bar or set of bars"), staggered so every hot bar is shared
    by 4 users — the crossfilter-typical overlap the union-coalescing
    batch path amortizes."""
    return [
        np.array(
            [int(order[(u + k) % HOT_BARS]) for k in range(BARS_PER_USER)],
            dtype=np.int64,
        )
        for u in range(BATCH_USERS)
    ]


def test_batched_brush(brush_db):
    """Multi-brush batching: N users' same-view brushes coalesced into
    one backward CSR pass + one shared position-domain execution
    (``DatabaseServer.sql_batch``) vs N independent ``sql`` calls.

    The answer memo is off in **both** arms: with it on, the unbatched
    loop would be measuring cache hits and the comparison would say
    nothing about the batch path.  Equivalence is asserted first —
    batched answers must be bit-identical to the per-user loop."""
    from repro.serve import DatabaseServer

    db = brush_db
    counts = np.asarray(db.result("view").table.column("cnt"))
    order = np.argsort(counts)[::-1][:HOT_BARS]
    bars_list = _user_bars(order)
    params_list = [{"bars": bars} for bars in bars_list]

    with DatabaseServer(db, readers=BATCH_USERS, memoize_answers=False) as server:
        singles = [server.sql(BRUSH, params=p) for p in params_list]
        batched = server.sql_batch(BRUSH, params_list)
        assert len(batched) == len(singles)
        for single, batch in zip(singles, batched, strict=True):
            assert single.table.to_rows() == batch.table.to_rows()

        deadline = time.perf_counter() + _measure_seconds()
        unbatched_brushes = 0
        start = time.perf_counter()
        while time.perf_counter() < deadline:
            for p in params_list:
                server.sql(BRUSH, params=p)
            unbatched_brushes += BATCH_USERS
        unbatched_elapsed = time.perf_counter() - start

        deadline = time.perf_counter() + _measure_seconds()
        batched_brushes = 0
        start = time.perf_counter()
        while time.perf_counter() < deadline:
            server.sql_batch(BRUSH, params_list)
            batched_brushes += BATCH_USERS
        batched_elapsed = time.perf_counter() - start

    RESULTS["unbatched_8users"] = unbatched_brushes / unbatched_elapsed
    RESULTS["batched_8users"] = batched_brushes / batched_elapsed


def test_batched_brush_gate(brush_db):
    """Acceptance: the batched path sustains >= 2x the unbatched loop at
    8 users on overlapping hot bars.  Holds even on one core — batching
    removes redundant resolution/gather/factorize work rather than
    relying on parallel hardware."""
    if scale() < 1.0:
        pytest.skip("batching gate applies at REPRO_SCALE >= 1 only")
    assert RESULTS["batched_8users"] >= 2.0 * RESULTS["unbatched_8users"], RESULTS


def test_concurrent_scaling_gate(brush_db):
    """Acceptance: 4 snapshot readers sustain >= 4x the serialized R/W
    baseline, and 8 readers >= 1.5x one reader (the answer memo must
    turn extra readers into throughput, not just contention), at the
    default bench scale."""
    if scale() < 1.0:
        pytest.skip("concurrency gates apply at REPRO_SCALE >= 1 only")
    assert RESULTS["readers_4"] >= 4.0 * RESULTS["serialized_rw"], RESULTS
    assert RESULTS["readers_8"] >= 1.5 * RESULTS["readers_1"], RESULTS
